//! gIndex: frequent and discriminative subgraph features.
//!
//! Yan, Yu, Han, "Graph indexing: a frequent structure-based approach"
//! (SIGMOD 2004). Index construction mines the dataset for connected
//! subgraph fragments of up to a configurable size, keeping those that are
//! frequent (support ratio ≥ 0.1 in the paper's configuration; size-1
//! fragments are always kept) *and* discriminative (discriminative ratio ≥
//! 2.0) — see [`sqbench_features::mining`] for the exact definitions. Each
//! retained fragment stores the list of graphs containing it, ordered by
//! canonical key (the role the original prefix tree plays).
//!
//! Query processing enumerates the query's connected fragments up to the
//! same size limit, looks each up in the index, and intersects the graph-id
//! lists of every indexed fragment it finds; fragments that were not
//! retained by mining simply contribute no constraint. Verification uses the
//! shared VF2 first-match verifier.

use crate::candidates::{ArenaFold, CandidateSet, Tombstones};
use crate::config::GIndexConfig;
use crate::fcache::FilterCacheCtx;
use crate::{GraphIndex, IndexStats, MethodKind};
use sqbench_features::mining::{FeatureKind, FrequentFeature, MinedFeatures, MiningConfig};
use sqbench_features::FrequentMiner;
use sqbench_graph::{Dataset, Graph, GraphId};
use std::sync::Arc;

/// The gIndex index.
#[derive(Debug, Clone)]
pub struct GIndex {
    config: GIndexConfig,
    features: MinedFeatures,
    graph_count: usize,
    /// Removed ids; posting payloads are compacted lazily once the mask
    /// passes the compaction threshold.
    tombstones: Tombstones,
}

impl GIndex {
    /// Builds the index over a dataset by mining frequent + discriminative
    /// fragments.
    pub fn build(dataset: &Dataset, config: GIndexConfig) -> Self {
        let mining = MiningConfig {
            max_feature_edges: config.max_feature_edges,
            min_support_ratio: config.min_support_ratio,
            discriminative_ratio: config.discriminative_ratio,
            kind: FeatureKind::Subgraph,
        };
        let features = FrequentMiner::new(mining).mine(dataset);
        GIndex {
            config,
            features,
            graph_count: dataset.len(),
            tombstones: Tombstones::from_sorted(dataset.dead_ids()),
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &GIndexConfig {
        &self.config
    }

    /// Number of retained (frequent + discriminative) features.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// `true` iff every feature's support list is strictly ascending — the
    /// invariant the frequency-ordered filter folds rely on, which online
    /// insert (append-max) and lazy compaction must both preserve. Exposed
    /// for the hot-loop ingest property tests.
    #[doc(hidden)]
    pub fn postings_strictly_ascending(&self) -> bool {
        self.features
            .values()
            .all(|f| f.supporting_graphs.windows(2).all(|w| w[0] < w[1]))
    }

    fn mining_config(&self) -> MiningConfig {
        MiningConfig {
            max_feature_edges: self.config.max_feature_edges,
            min_support_ratio: self.config.min_support_ratio,
            discriminative_ratio: self.config.discriminative_ratio,
            kind: FeatureKind::Subgraph,
        }
    }

    /// The seed's `Vec`-per-feature filtering, kept verbatim as the
    /// reference implementation the bitset engine is property-tested
    /// against. Not part of the query path.
    #[doc(hidden)]
    pub fn filter_reference(&self, query: &Graph) -> Vec<GraphId> {
        let miner = FrequentMiner::new(self.mining_config());
        let query_fragments = miner.enumerate_graph(query);
        let mut candidates: Option<Vec<GraphId>> = None;
        for key in query_fragments.keys() {
            if let Some(feature) = self.features.get(key) {
                let support = &feature.supporting_graphs;
                candidates = Some(match candidates {
                    None => support.clone(),
                    Some(current) => crate::intersect_sorted(&current, support),
                });
                if candidates.as_ref().is_some_and(Vec::is_empty) {
                    return Vec::new();
                }
            }
        }
        candidates.unwrap_or_else(|| (0..self.graph_count).collect())
    }
}

impl GraphIndex for GIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::GIndex
    }

    fn universe(&self) -> usize {
        self.graph_count
    }

    fn insert(&mut self, graph: &Graph) -> GraphId {
        let gid = self.graph_count;
        // The mined feature set stays frozen (re-mining on every insert
        // would be the full build cost); the new graph only joins the
        // supports of features it contains. That can leave the candidate
        // sets of *future* queries looser than a from-scratch re-mine would
        // — sound, since verification is exact — but never misses: any
        // indexed fragment the new graph contains now posts it.
        let miner = FrequentMiner::new(self.mining_config());
        for key in miner.enumerate_graph(graph).keys() {
            if let Some(feature) = self.features.get_mut(key) {
                // gid is the largest id ever issued, so the push keeps the
                // support list sorted.
                feature.supporting_graphs.push(gid);
            }
        }
        self.graph_count += 1;
        gid
    }

    fn remove(&mut self, id: GraphId) -> bool {
        if id >= self.graph_count || !self.tombstones.mark(id) {
            return false;
        }
        if self.tombstones.should_compact(self.graph_count) {
            let dead = &self.tombstones;
            for feature in self.features.values_mut() {
                feature.supporting_graphs.retain(|g| !dead.contains(*g));
            }
        }
        true
    }

    fn filter_into(&self, query: &Graph, out: &mut CandidateSet) {
        // Enumerate the query's fragments with the same enumerator used at
        // build time, then intersect the id lists of those present in the
        // index. Fragments absent from the index impose no constraint (they
        // may have been pruned as infrequent or non-discriminative); a query
        // none of whose fragments are indexed finishes as the full set.
        //
        // Matched features fold rarest-first (shortest support list first):
        // intersection commutes, so the result is bit-identical to canonical
        // key order, but the set narrows to its final size after the first
        // application and every later retain_sorted streams over a
        // near-minimal set — with far more frequent empty short-circuits.
        let miner = FrequentMiner::new(self.mining_config());
        let query_fragments = miner.enumerate_graph(query);
        let mut matched: Vec<&FrequentFeature> = query_fragments
            .keys()
            .filter_map(|key| self.features.get(key))
            .collect();
        matched.sort_by_key(|f| f.supporting_graphs.len());
        let mut fold = ArenaFold::new(out, self.graph_count);
        for feature in matched {
            if !fold.apply_sorted(feature.supporting_graphs.iter().copied()) {
                return;
            }
        }
        fold.finish();
        self.tombstones.apply(out);
    }

    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        ctx: &mut FilterCacheCtx<'_>,
    ) {
        // Same fragment enumeration as `filter_into`; only *indexed*
        // fragments are probed in the cache (unindexed ones impose no
        // constraint either way), keyed by their canonical feature key.
        // Mined supports are frozen at build time, so a cached bitset is
        // valid for the index's lifetime. Features fold rarest-first, like
        // the uncached path.
        let miner = FrequentMiner::new(self.mining_config());
        let query_fragments = miner.enumerate_graph(query);
        let mut matched: Vec<&FrequentFeature> = query_fragments
            .keys()
            .filter_map(|key| self.features.get(key))
            .collect();
        matched.sort_by_key(|f| f.supporting_graphs.len());
        let mut fold = ArenaFold::new(out, self.graph_count);
        for feature in matched {
            let cache_key = format!("f:{}", feature.key.as_str());
            let cached = match ctx.get(&cache_key) {
                Some(set) => set,
                None => {
                    let set = Arc::new(CandidateSet::from_sorted_ids(
                        self.graph_count,
                        &feature.supporting_graphs,
                    ));
                    ctx.put(cache_key, Arc::clone(&set));
                    set
                }
            };
            if !fold.apply_set(&cached) {
                return;
            }
        }
        fold.finish();
        self.tombstones.apply(out);
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            distinct_features: self.features.len(),
            size_bytes: self.features.values().map(|f| f.memory_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_answers;
    use sqbench_graph::GraphBuilder;

    fn dataset() -> Dataset {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let star = GraphBuilder::new("star")
            .vertices(&[2, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap();
        Dataset::from_graphs("ds", vec![tri, path, star])
    }

    fn test_config() -> GIndexConfig {
        GIndexConfig {
            max_feature_edges: 3,
            min_support_ratio: 0.1,
            discriminative_ratio: 1.0,
        }
    }

    fn query(labels: &[u32], edges: &[(usize, usize)]) -> Graph {
        GraphBuilder::new("q")
            .vertices(labels)
            .edges(edges)
            .build()
            .unwrap()
    }

    #[test]
    fn build_mines_features() {
        let idx = GIndex::build(&dataset(), test_config());
        assert!(idx.feature_count() > 0);
        assert_eq!(idx.kind(), MethodKind::GIndex);
        assert!(idx.stats().size_bytes > 0);
    }

    #[test]
    fn filter_is_a_superset_of_answers() {
        let ds = dataset();
        let idx = GIndex::build(&ds, test_config());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1], vec![(0, 1)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
        ] {
            let q = query(&labels, &edges);
            let candidates = idx.filter(&q);
            for a in exhaustive_answers(&ds, &q) {
                assert!(candidates.contains(&a), "answer missing for {labels:?}");
            }
        }
    }

    #[test]
    fn query_returns_exact_answers() {
        let ds = dataset();
        let idx = GIndex::build(&ds, test_config());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 2, 3], vec![(0, 1), (1, 2)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
        ] {
            let q = query(&labels, &edges);
            let outcome = idx.query(&ds, &q);
            assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
        }
    }

    #[test]
    fn triangle_feature_prunes_acyclic_graphs() {
        let ds = dataset();
        let idx = GIndex::build(&ds, test_config());
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let candidates = idx.filter(&q);
        // Only the triangle graph contains the triangle fragment; with the
        // discriminative filter disabled the fragment is indexed, so the
        // other graphs are pruned at filtering time.
        assert_eq!(candidates, vec![0]);
    }

    #[test]
    fn unindexed_query_labels_yield_empty_answers() {
        let ds = dataset();
        let idx = GIndex::build(&ds, test_config());
        let q = query(&[8, 9], &[(0, 1)]);
        let outcome = idx.query(&ds, &q);
        assert!(outcome.answers.is_empty());
        // The single fragment 8-9 is absent from the index so filtering
        // cannot prune; verification does the work (this mirrors gIndex's
        // reliance on verification for unindexed fragments).
    }

    #[test]
    fn higher_discriminative_ratio_shrinks_the_index() {
        let ds = dataset();
        let relaxed = GIndex::build(&ds, test_config());
        let strict = GIndex::build(
            &ds,
            GIndexConfig {
                discriminative_ratio: 5.0,
                ..test_config()
            },
        );
        assert!(strict.feature_count() <= relaxed.feature_count());
        // Soundness is unaffected.
        let q = query(&[1, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(
            strict.query(&ds, &q).answers,
            relaxed.query(&ds, &q).answers
        );
    }

    #[test]
    fn empty_query_matches_everything() {
        let ds = dataset();
        let idx = GIndex::build(&ds, test_config());
        let outcome = idx.query(&ds, &Graph::new("empty"));
        assert_eq!(outcome.candidates, vec![0, 1, 2]);
        assert_eq!(outcome.answers, vec![0, 1, 2]);
    }

    #[test]
    fn insert_and_remove_track_rebuild_answers() {
        let mut ds = dataset();
        let mut idx = GIndex::build(&ds, test_config());
        let extra = GraphBuilder::new("extra")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(idx.insert(&extra), 3);
        ds.push(extra);
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        ds.remove(0);

        // Candidate sets may differ from a re-mined index (the feature set
        // is frozen at build time) — verified answers must not.
        let rebuilt = GIndex::build(&ds, test_config());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1], vec![(0, 1)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2), (2, 0)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
        ] {
            let q = query(&labels, &edges);
            assert_eq!(idx.query(&ds, &q).answers, rebuilt.query(&ds, &q).answers);
            assert_eq!(idx.query(&ds, &q).answers, exhaustive_answers(&ds, &q));
        }
        assert_eq!(
            idx.query(&ds, &Graph::new("empty")).answers,
            vec![1, 2, 3],
            "dead id masked on the unconstrained path"
        );
    }
}
