//! Trie over vertex-label sequences, shared by Grapes and GraphGrepSX.
//!
//! Both methods enumerate all simple paths up to a maximum length with a DFS
//! and organize them in a tree keyed by the path's label sequence (a suffix
//! tree in GraphGrepSX, a trie in Grapes). At every node the structure
//! records, per dataset graph, how many traversals end there and — when
//! location information is enabled (Grapes) — the ids of the vertices at
//! which those traversals start.

use sqbench_graph::{GraphId, Label, VertexId};
use std::collections::BTreeMap;

/// Per-graph payload stored at a trie node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathEntry {
    /// Number of directed traversals of this label sequence in the graph.
    pub count: u32,
    /// Start vertices of those traversals (only populated when the trie
    /// stores location information). Sorted and deduplicated.
    pub start_vertices: Vec<VertexId>,
}

impl PathEntry {
    fn record(&mut self, start: Option<VertexId>) {
        self.count += 1;
        if let Some(s) = start {
            if let Err(pos) = self.start_vertices.binary_search(&s) {
                self.start_vertices.insert(pos, s);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.start_vertices.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// One trie node: child edges keyed by the next vertex label, plus the
/// per-graph occurrence payload of the label sequence spelled by the path
/// from the root to this node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TrieNode {
    children: BTreeMap<Label, usize>,
    graphs: BTreeMap<GraphId, PathEntry>,
}

/// Trie over label sequences with per-graph occurrence payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTrie {
    nodes: Vec<TrieNode>,
    store_locations: bool,
    inserted_paths: usize,
}

impl PathTrie {
    /// Creates an empty trie. `store_locations` controls whether start
    /// vertices are recorded (Grapes) or only counts (GraphGrepSX).
    pub fn new(store_locations: bool) -> Self {
        PathTrie {
            nodes: vec![TrieNode::default()],
            store_locations,
            inserted_paths: 0,
        }
    }

    /// Whether this trie stores start-vertex location information.
    pub fn stores_locations(&self) -> bool {
        self.store_locations
    }

    /// Number of trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct label sequences that have at least one occurrence.
    pub fn distinct_paths(&self) -> usize {
        self.nodes.iter().filter(|n| !n.graphs.is_empty()).count()
    }

    /// Total number of traversals inserted.
    pub fn inserted_paths(&self) -> usize {
        self.inserted_paths
    }

    /// Records one directed traversal of `labels` in graph `graph`,
    /// optionally starting at `start`.
    pub fn insert(&mut self, labels: &[Label], graph: GraphId, start: VertexId) {
        let mut node = 0usize;
        for &label in labels {
            node = match self.nodes[node].children.get(&label) {
                Some(&child) => child,
                None => {
                    let child = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[node].children.insert(label, child);
                    child
                }
            };
        }
        let start = if self.store_locations {
            Some(start)
        } else {
            None
        };
        self.nodes[node]
            .graphs
            .entry(graph)
            .or_default()
            .record(start);
        self.inserted_paths += 1;
    }

    /// Looks up a label sequence; returns the per-graph payload of the node
    /// it spells, or `None` if no dataset path has this label sequence.
    pub fn lookup(&self, labels: &[Label]) -> Option<&BTreeMap<GraphId, PathEntry>> {
        let mut node = 0usize;
        for &label in labels {
            node = *self.nodes[node].children.get(&label)?;
        }
        if self.nodes[node].graphs.is_empty() {
            None
        } else {
            Some(&self.nodes[node].graphs)
        }
    }

    /// Streams, in ascending graph-id order, the graphs whose payload at
    /// `labels` records at least `min_count` traversals — the posting list
    /// the filtering stage feeds into a
    /// [`crate::candidates::CandidateSet`] without materializing a `Vec`.
    /// `None` when no dataset path has this label sequence.
    pub fn candidates_with_count(
        &self,
        labels: &[Label],
        min_count: u32,
    ) -> Option<impl Iterator<Item = GraphId> + '_> {
        self.lookup(labels).map(move |payload| {
            payload
                .iter()
                .filter(move |(_, entry)| entry.count >= min_count)
                .map(|(&gid, _)| gid)
        })
    }

    /// Merges another trie into this one, consuming it (used by Grapes'
    /// parallel build: each worker thread builds a partial trie over its
    /// share of the dataset, then the partial tries are merged). Payloads
    /// are moved, not copied, so merging is linear in the smaller trie.
    pub fn merge(&mut self, mut other: PathTrie) {
        let other_nodes = std::mem::take(&mut other.nodes);
        let mut taken: Vec<TrieNode> = other_nodes;
        self.merge_node(0, &mut taken, 0);
        self.inserted_paths += other.inserted_paths;
    }

    fn merge_node(&mut self, self_node: usize, other: &mut [TrieNode], other_node: usize) {
        // Move the payloads across.
        let other_graphs = std::mem::take(&mut other[other_node].graphs);
        for (gid, entry) in other_graphs {
            match self.nodes[self_node].graphs.entry(gid) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(entry);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let target = slot.get_mut();
                    target.count += entry.count;
                    for s in entry.start_vertices {
                        if let Err(pos) = target.start_vertices.binary_search(&s) {
                            target.start_vertices.insert(pos, s);
                        }
                    }
                }
            }
        }
        // Merge children.
        let other_children: Vec<(Label, usize)> = std::mem::take(&mut other[other_node].children)
            .into_iter()
            .collect();
        for (label, other_child) in other_children {
            let self_child = match self.nodes[self_node].children.get(&label) {
                Some(&c) => c,
                None => {
                    let c = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[self_node].children.insert(label, c);
                    c
                }
            };
            self.merge_node(self_child, other, other_child);
        }
    }

    /// Removes every payload entry of the given (sorted) dead graph ids —
    /// the trie side of lazy tombstone compaction. Node structure is kept
    /// (re-inserting a label sequence reuses it); `inserted_paths` is
    /// decremented by the traversal counts that disappear.
    pub fn purge(&mut self, dead: &[GraphId]) {
        if dead.is_empty() {
            return;
        }
        for node in &mut self.nodes {
            for &gid in dead {
                if let Some(entry) = node.graphs.remove(&gid) {
                    self.inserted_paths -= entry.count as usize;
                }
            }
        }
    }

    /// Estimated heap bytes used by the trie.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<TrieNode>()
                    + n.children.len()
                        * (std::mem::size_of::<Label>() + std::mem::size_of::<usize>())
                    + n.graphs
                        .values()
                        .map(|e| std::mem::size_of::<GraphId>() + e.memory_bytes())
                        .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut trie = PathTrie::new(true);
        trie.insert(&[1, 2, 3], 0, 5);
        trie.insert(&[1, 2, 3], 0, 7);
        trie.insert(&[1, 2, 3], 1, 0);
        trie.insert(&[1, 2], 0, 5);
        let payload = trie.lookup(&[1, 2, 3]).unwrap();
        assert_eq!(payload.len(), 2);
        assert_eq!(payload[&0].count, 2);
        assert_eq!(payload[&0].start_vertices, vec![5, 7]);
        assert_eq!(payload[&1].count, 1);
        assert_eq!(trie.lookup(&[1, 2]).unwrap()[&0].count, 1);
        assert!(trie.lookup(&[9]).is_none());
        assert!(trie.lookup(&[1, 2, 3, 4]).is_none());
        assert_eq!(trie.inserted_paths(), 4);
    }

    #[test]
    fn prefix_without_occurrence_is_not_a_path() {
        let mut trie = PathTrie::new(false);
        trie.insert(&[4, 5, 6], 0, 0);
        // The prefix [4, 5] exists as a node but has no recorded occurrence.
        assert!(trie.lookup(&[4, 5]).is_none());
        assert!(trie.lookup(&[4, 5, 6]).is_some());
        assert_eq!(trie.distinct_paths(), 1);
        assert_eq!(trie.node_count(), 4); // root + 3
    }

    #[test]
    fn locations_disabled_keeps_counts_only() {
        let mut trie = PathTrie::new(false);
        trie.insert(&[1], 3, 42);
        let payload = trie.lookup(&[1]).unwrap();
        assert_eq!(payload[&3].count, 1);
        assert!(payload[&3].start_vertices.is_empty());
        assert!(!trie.stores_locations());
    }

    #[test]
    fn duplicate_starts_are_deduplicated() {
        let mut trie = PathTrie::new(true);
        trie.insert(&[1, 1], 0, 2);
        trie.insert(&[1, 1], 0, 2);
        let payload = trie.lookup(&[1, 1]).unwrap();
        assert_eq!(payload[&0].count, 2);
        assert_eq!(payload[&0].start_vertices, vec![2]);
    }

    #[test]
    fn merge_combines_counts_and_structure() {
        let mut a = PathTrie::new(true);
        a.insert(&[1, 2], 0, 0);
        a.insert(&[1, 3], 0, 1);
        let mut b = PathTrie::new(true);
        b.insert(&[1, 2], 0, 4);
        b.insert(&[2, 2], 1, 0);
        a.merge(b);
        assert_eq!(a.lookup(&[1, 2]).unwrap()[&0].count, 2);
        assert_eq!(a.lookup(&[1, 2]).unwrap()[&0].start_vertices, vec![0, 4]);
        assert_eq!(a.lookup(&[2, 2]).unwrap()[&1].count, 1);
        assert_eq!(a.lookup(&[1, 3]).unwrap()[&0].count, 1);
        assert_eq!(a.inserted_paths(), 4);
    }

    #[test]
    fn purge_drops_dead_graphs_but_keeps_structure() {
        let mut trie = PathTrie::new(true);
        trie.insert(&[1, 2], 0, 0);
        trie.insert(&[1, 2], 1, 3);
        trie.insert(&[1, 2], 1, 4);
        trie.insert(&[2, 2], 1, 0);
        trie.insert(&[1, 3], 2, 1);
        let nodes = trie.node_count();
        trie.purge(&[1]);
        assert_eq!(trie.lookup(&[1, 2]).unwrap().len(), 1);
        assert!(trie.lookup(&[1, 2]).unwrap().contains_key(&0));
        assert!(trie.lookup(&[2, 2]).is_none(), "graph 1 was its only owner");
        assert_eq!(trie.lookup(&[1, 3]).unwrap()[&2].count, 1);
        assert_eq!(trie.inserted_paths(), 2, "graph 1's traversals subtracted");
        assert_eq!(trie.node_count(), nodes, "structure survives the purge");
        // Re-inserting after a purge reuses the surviving nodes.
        trie.insert(&[2, 2], 3, 7);
        assert_eq!(trie.node_count(), nodes);
        assert_eq!(trie.lookup(&[2, 2]).unwrap()[&3].count, 1);
    }

    #[test]
    fn memory_accounting_grows_with_content() {
        let mut trie = PathTrie::new(true);
        let empty_bytes = trie.memory_bytes();
        for i in 0..20u32 {
            trie.insert(&[i, i + 1, i + 2], 0, i as usize);
        }
        assert!(trie.memory_bytes() > empty_bytes);
    }

    #[test]
    fn empty_label_sequence_hits_the_root() {
        let mut trie = PathTrie::new(false);
        assert!(trie.lookup(&[]).is_none());
        trie.insert(&[], 0, 0);
        assert!(trie.lookup(&[]).is_some());
    }
}
