//! GraphGrepSX (GGSX): exhaustive path enumeration in a suffix-tree-style
//! trie with per-graph occurrence counts.
//!
//! Bonnici et al., "Enhancing graph database indexing by suffix tree
//! structure" (PRIB 2010). Index construction enumerates, with a DFS, every
//! simple path of up to `max_path_edges` edges of every dataset graph and
//! organizes the label sequences in a trie; each node stores the list of
//! graphs containing the corresponding path together with the number of its
//! occurrences. Query processing enumerates the query's paths the same way,
//! walks the index trie, prunes graphs that miss a path or have fewer
//! occurrences than the query requires, and verifies the surviving
//! candidates with VF2.

use crate::candidates::{ArenaFold, CandidateSet, Tombstones};
use crate::config::GgsxConfig;
use crate::fcache::FilterCacheCtx;
use crate::path_trie::PathTrie;
use crate::{GraphIndex, IndexStats, MethodKind};
use sqbench_features::paths::for_each_path;
use sqbench_graph::{Dataset, Graph, GraphId, Label};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cache key of one path feature: the required occurrence count plus the
/// label sequence. Keys are only unique *per trie* — the cache layer binds
/// one store to one index instance, so that is all they need to be.
pub(crate) fn path_feature_key(labels: &[Label], count: u32) -> String {
    use std::fmt::Write as _;
    let mut key = String::with_capacity(8 + labels.len() * 4);
    let _ = write!(key, "p{count}:");
    for label in labels {
        let _ = write!(key, ".{label}");
    }
    key
}

/// The cached counterpart of the GGSX/Grapes trie fold (the two methods
/// share trie contents and pruning rule): each path feature is looked up in
/// the cross-query store first and folded blockwise on a hit; on a miss the
/// trie stream is materialized once into a bitset, published, and folded.
/// A label sequence absent from every dataset graph is cached as the empty
/// set — pruning everything on later hits exactly like
/// [`ArenaFold::prune_all`] does on the miss path.
pub(crate) fn fold_trie_cached(
    trie: &PathTrie,
    graph_count: usize,
    query_counts: &BTreeMap<Vec<Label>, u32>,
    out: &mut CandidateSet,
    ctx: &mut FilterCacheCtx<'_>,
) {
    // Rarest-first application, matching the uncached trie fold: sort by
    // the trie payload size (an upper bound on the posting length — cheap
    // to read even on a cache hit, and identical for both paths so hit and
    // miss fold in the same order). Absent sequences sort first and prune
    // everything immediately.
    let mut ordered: Vec<(&Vec<Label>, u32, usize)> = query_counts
        .iter()
        .map(|(labels, &count)| {
            let payload_len = trie.lookup(labels).map_or(0, |payload| payload.len());
            (labels, count, payload_len)
        })
        .collect();
    ordered.sort_by_key(|&(_, _, payload_len)| payload_len);
    let mut fold = ArenaFold::new(out, graph_count);
    for (labels, query_count, _) in ordered {
        let key = path_feature_key(labels, query_count);
        let cached = match ctx.get(&key) {
            Some(set) => set,
            None => {
                let mut set = CandidateSet::empty(graph_count);
                if let Some(matching) = trie.candidates_with_count(labels, query_count) {
                    for gid in matching {
                        set.insert(gid);
                    }
                }
                let set = Arc::new(set);
                ctx.put(key, Arc::clone(&set));
                set
            }
        };
        if !fold.apply_set(&cached) {
            return;
        }
    }
    fold.finish();
}

/// The GraphGrepSX index.
#[derive(Debug, Clone)]
pub struct GgsxIndex {
    config: GgsxConfig,
    trie: PathTrie,
    graph_count: usize,
    /// Removed ids; trie payloads are purged lazily once the mask passes
    /// the compaction threshold.
    tombstones: Tombstones,
}

impl GgsxIndex {
    /// Builds the index over a dataset.
    pub fn build(dataset: &Dataset, config: GgsxConfig) -> Self {
        let mut trie = PathTrie::new(false);
        for (gid, graph) in dataset.iter() {
            for_each_path(graph, config.max_path_edges, |labels, start| {
                trie.insert(labels, gid, start);
            });
        }
        GgsxIndex {
            config,
            trie,
            graph_count: dataset.len(),
            tombstones: Tombstones::from_sorted(dataset.dead_ids()),
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &GgsxConfig {
        &self.config
    }

    /// Collects the query's path label sequences with their occurrence
    /// counts (shared with Grapes, which uses the same pruning rule).
    pub(crate) fn query_path_counts(
        query: &Graph,
        max_path_edges: usize,
    ) -> BTreeMap<Vec<Label>, u32> {
        let mut counts: BTreeMap<Vec<Label>, u32> = BTreeMap::new();
        for_each_path(query, max_path_edges, |labels, _| {
            *counts.entry(labels.to_vec()).or_insert(0) += 1;
        });
        counts
    }

    /// The seed's `Vec`-per-feature filtering, kept verbatim as the
    /// reference implementation the bitset engine is property-tested
    /// against and as the baseline of the `micro_candidates` benchmark.
    /// Not part of the query path.
    #[doc(hidden)]
    pub fn filter_reference(&self, query: &Graph) -> Vec<GraphId> {
        let query_counts = Self::query_path_counts(query, self.config.max_path_edges);
        if query_counts.is_empty() {
            return (0..self.graph_count).collect();
        }
        let mut candidates: Option<Vec<GraphId>> = None;
        for (labels, &query_count) in query_counts.iter() {
            let Some(payload) = self.trie.lookup(labels) else {
                return Vec::new();
            };
            let matching: Vec<GraphId> = payload
                .iter()
                .filter(|(_, entry)| entry.count >= query_count)
                .map(|(&gid, _)| gid)
                .collect();
            candidates = Some(match candidates {
                None => matching,
                Some(current) => crate::intersect_sorted(&current, &matching),
            });
            if candidates.as_ref().is_some_and(Vec::is_empty) {
                return Vec::new();
            }
        }
        candidates.unwrap_or_default()
    }
}

impl GraphIndex for GgsxIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::Ggsx
    }

    fn universe(&self) -> usize {
        self.graph_count
    }

    fn insert(&mut self, graph: &Graph) -> GraphId {
        let gid = self.graph_count;
        for_each_path(graph, self.config.max_path_edges, |labels, start| {
            self.trie.insert(labels, gid, start);
        });
        self.graph_count += 1;
        gid
    }

    fn remove(&mut self, id: GraphId) -> bool {
        if id >= self.graph_count || !self.tombstones.mark(id) {
            return false;
        }
        if self.tombstones.should_compact(self.graph_count) {
            self.trie.purge(self.tombstones.ids());
        }
        true
    }

    fn filter_into(&self, query: &Graph, out: &mut CandidateSet) {
        let query_counts = Self::query_path_counts(query, self.config.max_path_edges);
        // The borrowed arena is narrowed in place, one feature stream at a
        // time — no per-feature (or per-query) Vec. An empty query applies
        // no constraint and finishes as the full set. The early returns
        // leave the set empty, so the tombstone mask only matters on the
        // completed fold.
        //
        // Every path is looked up once; a miss prunes everything before any
        // fold work. The hits fold rarest-first (smallest trie payload
        // first — the payload size bounds the posting length), so the set
        // collapses toward its final cardinality after one application.
        let mut fold = ArenaFold::new(out, self.graph_count);
        let mut matched = Vec::with_capacity(query_counts.len());
        for (labels, &query_count) in query_counts.iter() {
            let Some(payload) = self.trie.lookup(labels) else {
                fold.prune_all();
                return;
            };
            matched.push((payload, query_count));
        }
        matched.sort_by_key(|(payload, _)| payload.len());
        for (payload, query_count) in matched {
            let matching = payload
                .iter()
                .filter(move |(_, entry)| entry.count >= query_count)
                .map(|(&gid, _)| gid);
            if !fold.apply_sorted(matching) {
                return;
            }
        }
        fold.finish();
        self.tombstones.apply(out);
    }

    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        ctx: &mut FilterCacheCtx<'_>,
    ) {
        let query_counts = Self::query_path_counts(query, self.config.max_path_edges);
        fold_trie_cached(&self.trie, self.graph_count, &query_counts, out, ctx);
        self.tombstones.apply(out);
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            distinct_features: self.trie.distinct_paths(),
            size_bytes: self.trie.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_answers;
    use sqbench_graph::GraphBuilder;

    fn dataset() -> Dataset {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let star = GraphBuilder::new("star")
            .vertices(&[2, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap();
        Dataset::from_graphs("ds", vec![tri, path, star])
    }

    fn query(labels: &[u32], edges: &[(usize, usize)]) -> Graph {
        GraphBuilder::new("q")
            .vertices(labels)
            .edges(edges)
            .build()
            .unwrap()
    }

    #[test]
    fn build_produces_nonempty_index() {
        let idx = GgsxIndex::build(&dataset(), GgsxConfig::default());
        let stats = idx.stats();
        assert!(stats.distinct_features > 0);
        assert!(stats.size_bytes > 0);
        assert_eq!(idx.kind(), MethodKind::Ggsx);
    }

    #[test]
    fn filter_is_a_superset_of_answers() {
        let ds = dataset();
        let idx = GgsxIndex::build(&ds, GgsxConfig::default());
        let q = query(&[1, 2], &[(0, 1)]);
        let candidates = idx.filter(&q);
        let answers = exhaustive_answers(&ds, &q);
        for a in &answers {
            assert!(candidates.contains(a), "answer {a} missing from candidates");
        }
    }

    #[test]
    fn query_returns_exact_answers() {
        let ds = dataset();
        let idx = GgsxIndex::build(&ds, GgsxConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1], vec![(0, 1)]),
            (vec![1, 2, 3], vec![(0, 1), (1, 2)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
        ] {
            let q = query(&labels, &edges);
            let outcome = idx.query(&ds, &q);
            assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
            for a in &outcome.answers {
                assert!(outcome.candidates.contains(a));
            }
        }
    }

    #[test]
    fn missing_path_prunes_everything() {
        let ds = dataset();
        let idx = GgsxIndex::build(&ds, GgsxConfig::default());
        let q = query(&[7, 8], &[(0, 1)]);
        assert!(idx.filter(&q).is_empty());
    }

    #[test]
    fn occurrence_counts_prune_low_multiplicity_graphs() {
        // Query: star with two label-1 leaves around a label-2 center. The
        // "path" graph has the 1-2 edge only once, so counting prunes it;
        // the triangle and the star both contain the pattern.
        let ds = dataset();
        let idx = GgsxIndex::build(&ds, GgsxConfig::default());
        let q = query(&[2, 1, 1], &[(0, 1), (0, 2)]);
        let candidates = idx.filter(&q);
        assert!(
            !candidates.contains(&1),
            "path graph should be pruned by counts"
        );
        assert_eq!(idx.query(&ds, &q).answers, vec![0, 2]);
    }

    #[test]
    fn empty_query_matches_all_graphs() {
        let ds = dataset();
        let idx = GgsxIndex::build(&ds, GgsxConfig::default());
        let q = Graph::new("empty");
        assert_eq!(idx.filter(&q), vec![0, 1, 2]);
    }

    #[test]
    fn single_vertex_query_filters_by_label() {
        let ds = dataset();
        let idx = GgsxIndex::build(&ds, GgsxConfig::default());
        let q = query(&[3], &[]);
        assert_eq!(idx.query(&ds, &q).answers, vec![1]);
    }

    #[test]
    fn insert_and_remove_track_rebuild_answers() {
        let mut ds = dataset();
        let mut idx = GgsxIndex::build(&ds, GgsxConfig::default());
        let extra = GraphBuilder::new("extra")
            .vertices(&[1, 2, 3, 3])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(idx.insert(&extra), 3);
        ds.push(extra);
        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        ds.remove(1);

        let rebuilt = GgsxIndex::build(&ds, GgsxConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 2, 3], vec![(0, 1), (1, 2)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
        ] {
            let q = query(&labels, &edges);
            assert_eq!(idx.query(&ds, &q).answers, rebuilt.query(&ds, &q).answers);
            assert_eq!(idx.query(&ds, &q).answers, exhaustive_answers(&ds, &q));
        }
        // The empty query takes the unconstrained → full-set path: only the
        // tombstone mask keeps the dead id out.
        assert_eq!(idx.filter(&Graph::new("empty")), vec![0, 2, 3]);
    }

    #[test]
    fn shorter_path_limit_still_sound() {
        let ds = dataset();
        let idx = GgsxIndex::build(&ds, GgsxConfig { max_path_edges: 1 });
        let q = query(&[1, 2, 3], &[(0, 1), (1, 2)]);
        let outcome = idx.query(&ds, &q);
        assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
    }
}
