//! # sqbench-index
//!
//! The six indexed subgraph query processing methods evaluated in the VLDB
//! 2015 paper, implemented behind a common [`GraphIndex`] trait:
//!
//! | Method | Features | Extraction | Index structure | Location info | Borrowed-set filter ([`GraphIndex::filter_into`]) |
//! |---|---|---|---|---|---|
//! | [`grapes::GrapesIndex`] | paths | exhaustive | trie | yes (start vertices) | [`candidates::ArenaFold`] over trie payloads |
//! | [`ggsx::GgsxIndex`] (GraphGrepSX) | paths | exhaustive | suffix-tree-style trie | no (counts only) | [`candidates::ArenaFold`] over trie payloads |
//! | [`ctindex::CtIndex`] | trees + cycles | exhaustive | hashed bit fingerprints | no | direct id-ordered scan, bits set in place |
//! | [`gindex::GIndex`] | subgraphs | frequent mining | feature map (prefix-tree order) | no | [`candidates::ArenaFold`] over posting lists |
//! | [`treedelta::TreeDeltaIndex`] | trees (+ on-demand cycles) | frequent mining | hash map | no | [`candidates::ArenaFold`] over tree + Δ posting lists |
//! | [`gcode::GCodeIndex`] | paths (encoded) | exhaustive | spectral vertex/graph signatures | no | direct id-ordered scan, bits set in place |
//! | [`scan::ScanBaseline`] (baseline) | — | — | none | no | arena reset to the full set |
//!
//! All methods follow the same three stages (index construction, filtering,
//! verification); the trait captures that shape so the experiment harness can
//! drive any of them interchangeably and measure indexing time, index size,
//! query time and false positive ratio — the four metrics reported in the
//! paper.
//!
//! The filtering stage of every intersection-based method runs on the shared
//! bitset engine in [`candidates`]: per-feature id streams narrow one dense
//! [`candidates::CandidateSet`] in place. Since the borrowed-set refactor the
//! primary entry point is [`GraphIndex::filter_into`], which narrows a
//! **caller-owned** arena set — a query service hands each worker's reusable
//! arena to it, so serving a query allocates no candidate `Vec` and no fresh
//! bitset. The legacy [`GraphIndex::filter`] survives as a thin wrapper that
//! materializes the arena as the sorted `Vec<GraphId>` the original contract
//! promised. CT-Index and gCode scan per-graph structures in id order and
//! have no intersection stage; their `filter_into` sets the matching bits
//! directly.
//!
//! ## The borrowed-set filter contract
//!
//! `filter_into(&self, query, out)` must:
//!
//! 1. reset `out` to this index's [`GraphIndex::universe`] (arena sets are
//!    reused across queries *and across indexes/datasets*, so stale bits and
//!    a stale universe must both be overwritten — use
//!    [`candidates::CandidateSet::reset_empty`] /
//!    [`candidates::CandidateSet::reset_full`] or
//!    [`candidates::ArenaFold`], which do this);
//! 2. leave exactly the filtering-stage candidates set, bit-identical to
//!    what the legacy `filter()` returns as a sorted `Vec`;
//! 3. allocate nothing proportional to the candidate count.
//!
//! ## Cross-query feature caching
//!
//! [`GraphIndex::filter_into_cached`] is the cache-aware twin of
//! `filter_into`: a serving layer may hand it a [`fcache::FilterCacheCtx`]
//! over a shared [`fcache::FeatureCacheStore`], and the posting-fold
//! methods (Grapes, GGSX, gIndex, Tree+Δ) then reuse hot per-feature
//! bitsets via [`candidates::ArenaFold::apply_set`] instead of re-walking
//! their tries and feature maps. The contract is unchanged: cached and
//! uncached filtering produce bit-identical candidate sets. Methods whose
//! filters are direct id-ordered scans (CT-Index, gCode, the scan
//! baseline) explicitly opt out by delegating to `filter_into`.
//!
//! ## Online ingest
//!
//! Every index is mutable through [`GraphIndex::insert`] /
//! [`GraphIndex::remove`], mirroring the mutation surface of
//! [`sqbench_graph::Dataset`] (dense stable ids: insert appends the next
//! id, remove tombstones a slot). Inserts extend the method's payloads
//! incrementally — trie/posting appends for the path and mined-feature
//! methods, per-graph fingerprint/signature appends for the scan-shaped
//! ones. Removals are two-phase: a shared [`candidates::Tombstones`] mask
//! is applied at the end of every `filter_into` path immediately, and the
//! payloads themselves are compacted lazily once the mask passes
//! [`candidates::Tombstones::should_compact`]. The answer contract is
//! exact-by-verification: a mutated index may grow a *different* (still
//! sound) candidate set than a from-scratch rebuild — gIndex keeps its
//! mined feature set frozen, Tree+Δ keeps learned Δs — but verified
//! answers are always identical.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidates;
pub mod config;
pub mod ctindex;
pub mod fcache;
pub mod gcode;
pub mod ggsx;
pub mod gindex;
pub mod grapes;
pub mod path_trie;
pub mod scan;
pub mod treedelta;

use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_iso::{MatchState, Vf2Matcher};

pub use candidates::{ArenaFold, CandidateFold, CandidateSet, PostingList, Tombstones};
pub use config::{
    CtIndexConfig, GCodeConfig, GIndexConfig, GgsxConfig, GrapesConfig, MethodConfig,
    TreeDeltaConfig,
};
pub use fcache::{FeatureCacheStore, FilterCacheCtx};

/// Identifies one of the six competing methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Grapes (Giugno et al., 2013): exhaustive paths + location info, parallel build.
    Grapes,
    /// GraphGrepSX (Bonnici et al., 2010): exhaustive paths in a suffix tree.
    Ggsx,
    /// CT-Index (Klein et al., 2011): tree/cycle fingerprints.
    CtIndex,
    /// gIndex (Yan et al., 2004): frequent + discriminative subgraphs.
    GIndex,
    /// Tree+Δ (Zhao et al., 2007): frequent trees plus on-demand cycle features.
    TreeDelta,
    /// gCode (Zou et al., 2008): spectral vertex/graph signatures.
    GCode,
    /// Index-less sequential scan — the "naive method" baseline of the
    /// paper's introduction. Not one of the six compared methods and not
    /// part of [`MethodKind::ALL`]; available for ablations.
    Scan,
}

impl MethodKind {
    /// The six compared methods, in the order the paper lists them in its
    /// figures (the scan baseline is deliberately excluded).
    pub const ALL: [MethodKind; 6] = [
        MethodKind::Grapes,
        MethodKind::Ggsx,
        MethodKind::CtIndex,
        MethodKind::GIndex,
        MethodKind::TreeDelta,
        MethodKind::GCode,
    ];

    /// Human-readable method name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Grapes => "Grapes",
            MethodKind::Ggsx => "GGSX",
            MethodKind::CtIndex => "CT-Index",
            MethodKind::GIndex => "gIndex",
            MethodKind::TreeDelta => "Tree+Delta",
            MethodKind::GCode => "gCode",
            MethodKind::Scan => "Scan",
        }
    }
}

/// Outcome of processing one query: the candidate set produced by the
/// filtering stage and the verified answer set. `answers ⊆ candidates`
/// always holds; the gap between the two is what the false positive ratio
/// (Equation 3 of the paper) measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Graph ids that survived filtering, sorted ascending.
    pub candidates: Vec<GraphId>,
    /// Graph ids that actually contain the query, sorted ascending.
    pub answers: Vec<GraphId>,
}

impl QueryOutcome {
    /// False positive ratio of this single query: `(|C| - |A|) / |C|`,
    /// or 0 when the candidate set is empty.
    pub fn false_positive_ratio(&self) -> f64 {
        if self.candidates.is_empty() {
            0.0
        } else {
            (self.candidates.len() - self.answers.len()) as f64 / self.candidates.len() as f64
        }
    }
}

/// Summary statistics of a built index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of distinct features (or fingerprints/signatures) stored.
    pub distinct_features: usize,
    /// Estimated index size in bytes.
    pub size_bytes: usize,
}

/// Common interface of the six filter-and-verify methods.
///
/// Indexes are built once over a [`Dataset`] (by each method's `build`
/// constructor) and then answer any number of subgraph queries. Each method
/// implements the borrowed-set filtering entry point [`GraphIndex::filter_into`]
/// (see the module docs for the contract); `filter` and `query` are thin
/// default wrappers over it. The default verification uses the VF2
/// first-match verifier the paper standardizes on; Grapes and CT-Index
/// override the verification hooks with their specialized procedures, and
/// Tree+Δ hooks query-time feature learning into [`GraphIndex::verify_set`].
pub trait GraphIndex: Send + Sync {
    /// Which method this index implements.
    fn kind(&self) -> MethodKind;

    /// Number of graphs in the dataset this index was built over — the
    /// universe every candidate set for this index ranges over. Includes
    /// tombstoned (removed) slots: ids are dense and stable under mutation.
    fn universe(&self) -> usize;

    /// Incrementally indexes `graph` as the next graph id (which is the
    /// current [`GraphIndex::universe`]) and returns that id. The caller
    /// must push the same graph onto the backing dataset
    /// ([`sqbench_graph::Dataset::push`]) so ids stay aligned — the serving
    /// layer (`ShardedService::insert_graph` in the harness) does both
    /// sides and invalidates caches.
    ///
    /// Methods extend their payloads in place (posting/trie append,
    /// fingerprint push); none rebuilds from scratch on insert.
    fn insert(&mut self, graph: &Graph) -> GraphId;

    /// Removes graph `id` from the index. Returns `false` when `id` is out
    /// of range or already removed. The id stays allocated (dense stable
    /// ids): the index tombstones it, every subsequent filter masks it out,
    /// and payload storage is compacted lazily once tombstones accumulate
    /// ([`Tombstones::should_compact`]).
    fn remove(&mut self, id: GraphId) -> bool;

    /// Borrowed-set filtering stage: resets `out` to [`GraphIndex::universe`]
    /// and narrows it to the candidate set of `query`, reusing the arena's
    /// allocation. This is the hot entry point batch serving uses — one
    /// arena per worker, zero candidate allocation per query.
    fn filter_into(&self, query: &Graph, out: &mut CandidateSet);

    /// Cache-aware filtering stage: like [`GraphIndex::filter_into`], but
    /// with a cross-query [`FilterCacheCtx`] the method may consult for hot
    /// per-feature bitsets before streaming posting lists. The result must
    /// be **bit-identical** to `filter_into` — the cache only changes how
    /// the same bits are produced, never which bits.
    ///
    /// Every method either participates or explicitly opts out:
    ///
    /// * **participate** — GGSX, Grapes, gIndex and Tree+Δ override this to
    ///   fold cached bitsets via [`ArenaFold::apply_set`] (miss →
    ///   materialize once, insert, fold);
    /// * **opt out** — CT-Index, gCode and the scan baseline override this
    ///   to delegate straight to `filter_into`: their filters are direct
    ///   id-ordered scans with no per-feature posting lists to cache, so a
    ///   cache could only add probe overhead.
    ///
    /// The default delegates (opt-out), so a new method is correct before
    /// it is cache-aware.
    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        ctx: &mut FilterCacheCtx<'_>,
    ) {
        let _ = ctx;
        self.filter_into(query, out);
    }

    /// Legacy filtering stage: returns the sorted candidate set for `query`
    /// as an owned `Vec`. Thin compatibility wrapper over
    /// [`GraphIndex::filter_into`] that allocates a fresh arena and
    /// materializes it once.
    fn filter(&self, query: &Graph) -> Vec<GraphId> {
        let mut out = CandidateSet::empty(self.universe());
        self.filter_into(query, &mut out);
        out.to_sorted_vec()
    }

    /// Index statistics (feature count, size in bytes).
    fn stats(&self) -> IndexStats;

    /// Estimated index size in bytes. Defaults to `stats().size_bytes`.
    fn size_bytes(&self) -> usize {
        self.stats().size_bytes
    }

    /// Verification stage: tests `query` against each candidate with the
    /// shared VF2 verifier (first-match semantics).
    fn verify(&self, dataset: &Dataset, query: &Graph, candidates: &[GraphId]) -> Vec<GraphId> {
        vf2_verify(dataset, query, candidates)
    }

    /// Verification straight off a filtered [`CandidateSet`]: iterates the
    /// set bits in id order without materializing them as a `Vec`. Methods
    /// with specialized verification override this — CT-Index's tuned
    /// matcher, Grapes' location-restricted matching, Tree+Δ's query-time Δ
    /// learning — so a batch service driving `filter_into` + `verify_set`
    /// preserves each method's published query semantics.
    fn verify_set(
        &self,
        dataset: &Dataset,
        query: &Graph,
        candidates: &CandidateSet,
    ) -> Vec<GraphId> {
        vf2_verify_set(dataset, query, candidates)
    }

    /// Full query processing: filtering followed by verification, through
    /// the borrowed-set stages (one arena, materialized only for the
    /// returned [`QueryOutcome::candidates`]).
    fn query(&self, dataset: &Dataset, query: &Graph) -> QueryOutcome {
        let mut set = CandidateSet::empty(self.universe());
        self.filter_into(query, &mut set);
        let answers = self.verify_set(dataset, query, &set);
        QueryOutcome {
            candidates: set.to_sorted_vec(),
            answers,
        }
    }
}

std::thread_local! {
    /// Per-thread VF2 scratch reused by every [`vf2_verify`] call on the
    /// same worker: the harness batches queries across a thread pool, and
    /// each worker's verification runs allocation-free after warm-up.
    static VERIFY_STATE: std::cell::RefCell<MatchState> =
        std::cell::RefCell::new(MatchState::new());
}

/// Candidates gathered per block by the verify helpers below. The dataset
/// stores graphs behind `Arc`, so touching a candidate costs one pointer
/// hop; a gather pass reads each block candidate's vertex count in a tight
/// dependency-free loop, so the CPU overlaps those cache misses (and the
/// match pass finds every graph header hot) instead of serializing each
/// miss behind a full VF2 run — recovering the indirection cost of the
/// shared-storage data model on verification-heavy workloads.
const VERIFY_BLOCK: usize = 64;

/// Runs `matcher` over `candidates` block-wise (gather `&Graph` refs and
/// vertex counts, then match), appending surviving ids to `answers` in
/// input order. The gathered vertex count doubles as a sound size
/// prefilter: a graph with fewer vertices than the query cannot contain
/// it, so the matcher is never entered for it (`matches_with` would reject
/// it anyway).
fn verify_blocks<'d>(
    dataset: &'d Dataset,
    matcher: &Vf2Matcher<'_>,
    state: &mut MatchState,
    min_vertices: usize,
    candidates: impl Iterator<Item = GraphId>,
    answers: &mut Vec<GraphId>,
) {
    // Two blocks, double-buffered: candidates gather into `pending` (each
    // push issues a software prefetch of the graph's label/adjacency
    // buffers), and once `pending` is full the *previous* block — whose
    // prefetches were issued one round earlier and have had a full block of
    // gather work to land — runs through the matcher. The final partial
    // rounds flush in arrival order to keep `answers` sorted by input order.
    let mut ready: Vec<(GraphId, &'d Graph)> = Vec::with_capacity(VERIFY_BLOCK);
    let mut pending: Vec<(GraphId, &'d Graph)> = Vec::with_capacity(VERIFY_BLOCK);
    let mut flush = |block: &mut Vec<(GraphId, &Graph)>, answers: &mut Vec<GraphId>| {
        for &(gid, g) in block.iter() {
            if matcher.matches_with(state, g) {
                answers.push(gid);
            }
        }
        block.clear();
    };
    for gid in candidates {
        let Ok(g) = dataset.graph(gid) else { continue };
        // The load that matters: one touch of the graph header per
        // candidate, issued back to back across the block.
        if g.vertex_count() >= min_vertices {
            g.prefetch_hint();
            pending.push((gid, g));
            if pending.len() == VERIFY_BLOCK {
                flush(&mut ready, answers);
                std::mem::swap(&mut ready, &mut pending);
            }
        }
    }
    flush(&mut ready, answers);
    flush(&mut pending, answers);
}

/// Shared VF2 verification helper: keeps candidates that actually contain
/// the query, preserving sorted order. The matcher borrows the query (no
/// clone) and the search scratch is a per-thread [`MatchState`] reused
/// across candidates *and* across queries served by the same worker thread.
pub fn vf2_verify(dataset: &Dataset, query: &Graph, candidates: &[GraphId]) -> Vec<GraphId> {
    let matcher = Vf2Matcher::new(query);
    VERIFY_STATE.with(|cell| {
        let state = &mut *cell.borrow_mut();
        let mut answers = Vec::new();
        verify_blocks(
            dataset,
            &matcher,
            state,
            query.vertex_count(),
            candidates.iter().copied(),
            &mut answers,
        );
        answers
    })
}

/// Shared VF2 verification over a candidate bitset: keeps the member ids
/// that actually contain the query, in ascending id order, without ever
/// materializing the candidate set as a `Vec`. Same matcher/scratch reuse as
/// [`vf2_verify`] (per-thread [`MatchState`], query borrowed once).
pub fn vf2_verify_set(dataset: &Dataset, query: &Graph, candidates: &CandidateSet) -> Vec<GraphId> {
    let matcher = Vf2Matcher::new(query);
    VERIFY_STATE.with(|cell| {
        let state = &mut *cell.borrow_mut();
        let mut answers = Vec::new();
        verify_blocks(
            dataset,
            &matcher,
            state,
            query.vertex_count(),
            candidates.iter(),
            &mut answers,
        );
        answers
    })
}

/// Exhaustive ground truth: the exact answer set computed by running the
/// verifier against *every* graph in the dataset (the "naive method" the
/// paper uses as the correctness baseline). Quadratically expensive; used
/// by tests and small-scale experiments only.
pub fn exhaustive_answers(dataset: &Dataset, query: &Graph) -> Vec<GraphId> {
    let all: Vec<GraphId> = dataset.ids().collect();
    vf2_verify(dataset, query, &all)
}

/// Builds an index of the requested method over `dataset` using the given
/// configuration bundle. This is the factory the harness uses to iterate
/// over all six methods uniformly.
pub fn build_index(
    kind: MethodKind,
    config: &MethodConfig,
    dataset: &Dataset,
) -> Box<dyn GraphIndex> {
    match kind {
        MethodKind::Grapes => Box::new(grapes::GrapesIndex::build(dataset, config.grapes.clone())),
        MethodKind::Ggsx => Box::new(ggsx::GgsxIndex::build(dataset, config.ggsx.clone())),
        MethodKind::CtIndex => Box::new(ctindex::CtIndex::build(dataset, config.ctindex.clone())),
        MethodKind::GIndex => Box::new(gindex::GIndex::build(dataset, config.gindex.clone())),
        MethodKind::TreeDelta => Box::new(treedelta::TreeDeltaIndex::build(
            dataset,
            config.treedelta.clone(),
        )),
        MethodKind::GCode => Box::new(gcode::GCodeIndex::build(dataset, config.gcode.clone())),
        MethodKind::Scan => Box::new(scan::ScanBaseline::build(dataset)),
    }
}

/// Intersects two sorted id lists with the textbook linear merge.
///
/// This is the engine the seed implementation used for every per-feature
/// intersection; it is kept as the reference implementation the
/// [`candidates`] bitset engine is property-tested against, and as the
/// baseline of the `micro_candidates` benchmark.
pub fn intersect_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn tiny_dataset() -> Dataset {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        Dataset::from_graphs("tiny", vec![tri, path])
    }

    #[test]
    fn method_names() {
        assert_eq!(MethodKind::Grapes.name(), "Grapes");
        assert_eq!(MethodKind::ALL.len(), 6);
    }

    #[test]
    fn outcome_false_positive_ratio() {
        let o = QueryOutcome {
            candidates: vec![0, 1, 2, 3],
            answers: vec![0],
        };
        assert!((o.false_positive_ratio() - 0.75).abs() < 1e-12);
        let empty = QueryOutcome {
            candidates: vec![],
            answers: vec![],
        };
        assert_eq!(empty.false_positive_ratio(), 0.0);
    }

    #[test]
    fn vf2_verify_filters_non_matches() {
        let ds = tiny_dataset();
        let q = GraphBuilder::new("q")
            .vertices(&[1, 2])
            .edge(0, 1)
            .build()
            .unwrap();
        let verified = vf2_verify(&ds, &q, &[0, 1]);
        assert_eq!(verified, vec![0, 1]);
        let q2 = GraphBuilder::new("q2")
            .vertices(&[2, 3])
            .edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(vf2_verify(&ds, &q2, &[0, 1]), vec![1]);
    }

    #[test]
    fn exhaustive_answers_scans_whole_dataset() {
        let ds = tiny_dataset();
        let q = GraphBuilder::new("q").vertices(&[1]).build().unwrap();
        assert_eq!(exhaustive_answers(&ds, &q), vec![0, 1]);
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1, 2]), Vec::<usize>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }
}
