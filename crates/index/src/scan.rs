//! The index-less baseline: sequential scan with subgraph isomorphism.
//!
//! This is the "naive method" the paper uses to motivate indexing in its
//! introduction — test the query for subgraph isomorphism against every
//! graph in the dataset. It builds no index (zero construction time and
//! size), its candidate set is always the whole dataset, and its false
//! positive ratio is therefore exactly the fraction of graphs that do not
//! contain the query. It is not one of the six compared methods, but it is
//! the yardstick the filter-and-verify architecture is measured against and
//! is useful in ablations ("how much does filtering actually buy?").

use crate::candidates::{CandidateSet, Tombstones};
use crate::fcache::FilterCacheCtx;
use crate::{GraphIndex, IndexStats, MethodKind};
use sqbench_graph::{Dataset, Graph, GraphId};

/// The sequential-scan baseline.
#[derive(Debug, Clone)]
pub struct ScanBaseline {
    /// Number of graphs ever admitted (dense id space, dead slots
    /// included).
    graph_count: usize,
    /// Removed ids — the only state the baseline's "filter" has to honor.
    tombstones: Tombstones,
}

impl ScanBaseline {
    /// "Builds" the baseline (records only the dataset size).
    pub fn build(dataset: &Dataset) -> Self {
        ScanBaseline {
            graph_count: dataset.len(),
            tombstones: Tombstones::from_sorted(dataset.dead_ids()),
        }
    }
}

impl GraphIndex for ScanBaseline {
    fn kind(&self) -> MethodKind {
        MethodKind::Scan
    }

    fn universe(&self) -> usize {
        self.graph_count
    }

    fn insert(&mut self, _graph: &Graph) -> GraphId {
        let id = self.graph_count;
        self.graph_count += 1;
        id
    }

    fn remove(&mut self, id: GraphId) -> bool {
        id < self.graph_count && self.tombstones.mark(id)
    }

    fn filter_into(&self, _query: &Graph, out: &mut CandidateSet) {
        // No index, no pruning: every live graph is a candidate. The arena
        // is reset to the full set in place, so even the baseline serves
        // queries without a per-query allocation.
        out.reset_full(self.graph_count);
        self.tombstones.apply(out);
    }

    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        _ctx: &mut FilterCacheCtx<'_>,
    ) {
        // Explicit opt-out: the baseline has no features to cache — its
        // "filter" is a constant-time arena reset, which no cache can beat.
        self.filter_into(query, out);
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            distinct_features: 0,
            // The paper defines the scan baseline as index-free; its
            // reported size is the yardstick of the index-size panel.
            size_bytes: std::mem::size_of::<Self>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_answers;
    use sqbench_graph::GraphBuilder;

    fn dataset() -> Dataset {
        let a = GraphBuilder::new("a")
            .vertices(&[1, 2])
            .edge(0, 1)
            .build()
            .unwrap();
        let b = GraphBuilder::new("b")
            .vertices(&[2, 3])
            .edge(0, 1)
            .build()
            .unwrap();
        Dataset::from_graphs("ds", vec![a, b])
    }

    #[test]
    fn scan_answers_match_ground_truth() {
        let ds = dataset();
        let scan = ScanBaseline::build(&ds);
        let q = GraphBuilder::new("q")
            .vertices(&[1, 2])
            .edge(0, 1)
            .build()
            .unwrap();
        let outcome = scan.query(&ds, &q);
        assert_eq!(outcome.candidates, vec![0, 1]);
        assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
        assert_eq!(outcome.answers, vec![0]);
    }

    #[test]
    fn scan_has_no_index_to_speak_of() {
        let ds = dataset();
        let scan = ScanBaseline::build(&ds);
        let stats = scan.stats();
        assert_eq!(stats.distinct_features, 0);
        assert!(stats.size_bytes < 64);
    }

    #[test]
    fn scan_tracks_inserts_and_removes() {
        let mut ds = dataset();
        let mut scan = ScanBaseline::build(&ds);
        let c = GraphBuilder::new("c")
            .vertices(&[1, 3])
            .edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(scan.insert(&c), 2);
        ds.push(c);
        assert!(scan.remove(0));
        assert!(!scan.remove(0), "double remove is a no-op");
        assert!(!scan.remove(9), "out of range");
        ds.remove(0);
        let q = GraphBuilder::new("q").vertices(&[3]).build().unwrap();
        let outcome = scan.query(&ds, &q);
        assert_eq!(outcome.candidates, vec![1, 2], "dead id masked out");
        assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
    }

    #[test]
    fn scan_false_positive_ratio_is_miss_fraction() {
        let ds = dataset();
        let scan = ScanBaseline::build(&ds);
        let q = GraphBuilder::new("q").vertices(&[3]).build().unwrap();
        let outcome = scan.query(&ds, &q);
        // 2 candidates, 1 answer -> FP ratio 0.5.
        assert!((outcome.false_positive_ratio() - 0.5).abs() < 1e-12);
    }
}
