//! Grapes: exhaustive path enumeration with location information, parallel
//! index construction, and component-restricted parallel verification.
//!
//! Giugno et al., "GRAPES: A Software for Parallel Searching on Biological
//! Graphs Targeting Multi-Core Architectures" (PLoS One 2013). Grapes sits
//! in the same design-space region as GraphGrepSX (exhaustive paths in a
//! trie) but differs in two ways the paper singles out:
//!
//! 1. **Location information** — besides per-graph occurrence counts, each
//!    indexed path stores the ids of the vertices where its occurrences
//!    start. At query time the union of those start vertices over all query
//!    paths bounds where an embedding can live; verification then only has
//!    to look at the connected components induced by those vertices instead
//!    of the whole graph.
//! 2. **Parallelism** — both index construction and verification are spread
//!    across a configurable number of worker threads (6 in the paper's
//!    setup). Construction partitions the dataset graphs across threads,
//!    each of which builds a partial trie that is merged at the end; the
//!    paper's implementation partitions start vertices instead, which is
//!    equivalent work at dataset scale.
//!
//! As in the paper's methodology, verification returns after the *first*
//! match (the original GRAPES code enumerated all matches; the authors
//! patched it for the study, and we implement the patched semantics).

use crate::candidates::{ArenaFold, CandidateSet, Tombstones};
use crate::config::GrapesConfig;
use crate::fcache::FilterCacheCtx;
use crate::ggsx::{fold_trie_cached, GgsxIndex};
use crate::path_trie::PathTrie;
use crate::{GraphIndex, IndexStats, MethodKind};
use sqbench_features::paths::for_each_path;
use sqbench_graph::{algo, Dataset, Graph, GraphId, Label, VertexId};
use sqbench_iso::{MatchState, Vf2Matcher};
use std::collections::{BTreeMap, BTreeSet};

/// The Grapes index.
#[derive(Debug, Clone)]
pub struct GrapesIndex {
    config: GrapesConfig,
    trie: PathTrie,
    graph_count: usize,
    /// Removed ids; trie payloads are purged lazily once the mask passes
    /// the compaction threshold.
    tombstones: Tombstones,
}

impl GrapesIndex {
    /// Builds the index over a dataset, using `config.threads` worker
    /// threads (single-threaded when `threads <= 1` or the dataset is tiny).
    pub fn build(dataset: &Dataset, config: GrapesConfig) -> Self {
        let threads = config.threads.max(1).min(dataset.len().max(1));
        let trie = if threads <= 1 || dataset.len() < 2 {
            Self::build_partition(dataset, &config, 0, 1)
        } else {
            // Each worker builds a partial trie over a slice of the dataset;
            // the partial tries are merged afterwards (std scoped threads so
            // we can borrow the dataset without Arc gymnastics).
            let partials: Vec<PathTrie> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        let config = &config;
                        scope.spawn(move || Self::build_partition(dataset, config, worker, threads))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("grapes index worker panicked"))
                    .collect()
            });
            let mut iter = partials.into_iter();
            let mut merged = iter.next().expect("at least one partial trie");
            for partial in iter {
                merged.merge(partial);
            }
            merged
        };
        GrapesIndex {
            config,
            trie,
            graph_count: dataset.len(),
            tombstones: Tombstones::from_sorted(dataset.dead_ids()),
        }
    }

    /// Builds the partial trie for the graphs assigned to `worker` (every
    /// `stride`-th graph starting at `worker`).
    fn build_partition(
        dataset: &Dataset,
        config: &GrapesConfig,
        worker: usize,
        stride: usize,
    ) -> PathTrie {
        let mut trie = PathTrie::new(true);
        for (gid, graph) in dataset.iter() {
            if gid % stride != worker {
                continue;
            }
            for_each_path(graph, config.max_path_edges, |labels, start| {
                trie.insert(labels, gid, start);
            });
        }
        trie
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &GrapesConfig {
        &self.config
    }

    /// Filtering with location information: returns the candidate ids plus,
    /// for each candidate, the set of vertices at which query paths start —
    /// the only places an embedding can touch.
    fn filter_with_locations(
        &self,
        query: &Graph,
    ) -> (Vec<GraphId>, BTreeMap<GraphId, BTreeSet<VertexId>>) {
        // One path enumeration feeds both the fold and the location pass.
        let query_counts = GgsxIndex::query_path_counts(query, self.config.max_path_edges);
        let mut survivors = CandidateSet::empty(self.graph_count);
        self.fold_candidates(&query_counts, &mut survivors);
        self.tombstones.apply(&mut survivors);
        let locations = self.locations_for(&query_counts, &survivors);
        (survivors.to_sorted_vec(), locations)
    }

    /// The count-pruning fold over already-enumerated query path counts
    /// (shared by `filter_into` and `filter_with_locations`).
    fn fold_candidates(&self, query_counts: &BTreeMap<Vec<Label>, u32>, out: &mut CandidateSet) {
        // Rarest-first fold, mirroring GGSX: every path payload is looked
        // up once (a miss prunes everything immediately) and the hits are
        // applied smallest-payload-first so the set narrows to near its
        // final cardinality after the first application.
        let mut fold = ArenaFold::new(out, self.graph_count);
        let mut matched = Vec::with_capacity(query_counts.len());
        for (labels, &query_count) in query_counts.iter() {
            let Some(payload) = self.trie.lookup(labels) else {
                fold.prune_all();
                return;
            };
            matched.push((payload, query_count));
        }
        matched.sort_by_key(|(payload, _)| payload.len());
        for (payload, query_count) in matched {
            let matching = payload
                .iter()
                .filter(move |(_, entry)| entry.count >= query_count)
                .map(|(&gid, _)| gid);
            if !fold.apply_sorted(matching) {
                return;
            }
        }
        fold.finish();
    }

    /// Location pass: unions the start vertices of every query path over the
    /// surviving candidates. Picks the cheaper side per payload: a handful
    /// of survivors probe the payload map directly; a payload smaller than
    /// the survivor set is walked with bitset membership probes instead.
    fn locations_for(
        &self,
        query_counts: &BTreeMap<Vec<Label>, u32>,
        survivors: &CandidateSet,
    ) -> BTreeMap<GraphId, BTreeSet<VertexId>> {
        let mut locations: BTreeMap<GraphId, BTreeSet<VertexId>> = BTreeMap::new();
        // `len()` is cheap here — the candidate set caches its cardinality —
        // so no hand-hoisting into a local.
        for labels in query_counts.keys() {
            if let Some(payload) = self.trie.lookup(labels) {
                if survivors.len() <= payload.len() {
                    for gid in survivors.iter() {
                        if let Some(entry) = payload.get(&gid) {
                            locations
                                .entry(gid)
                                .or_default()
                                .extend(entry.start_vertices.iter().copied());
                        }
                    }
                } else {
                    for (&gid, entry) in payload {
                        if survivors.contains(gid) {
                            locations
                                .entry(gid)
                                .or_default()
                                .extend(entry.start_vertices.iter().copied());
                        }
                    }
                }
            }
        }
        locations
    }

    /// Verifies the query against one candidate graph, restricted to the
    /// connected components induced by the candidate's location vertices.
    /// `state` is the calling worker's reusable VF2 scratch.
    fn verify_candidate(
        query: &Graph,
        matcher: &Vf2Matcher<'_>,
        state: &mut MatchState,
        graph: &Graph,
        locations: Option<&BTreeSet<VertexId>>,
    ) -> bool {
        // Component-restricted verification is only sound for connected
        // queries (an embedding of a connected query lies in one component).
        if !algo::is_connected(query) {
            return matcher.matches_with(state, graph);
        }
        match locations {
            Some(vertices) if vertices.len() < graph.vertex_count() => {
                let vertex_list: Vec<VertexId> = vertices.iter().copied().collect();
                let restricted = graph.induced_subgraph(&vertex_list);
                algo::component_subgraphs(&restricted)
                    .iter()
                    .any(|component| matcher.matches_with(state, component))
            }
            _ => matcher.matches_with(state, graph),
        }
    }
}

impl GraphIndex for GrapesIndex {
    fn kind(&self) -> MethodKind {
        MethodKind::Grapes
    }

    fn universe(&self) -> usize {
        self.graph_count
    }

    fn insert(&mut self, graph: &Graph) -> GraphId {
        let gid = self.graph_count;
        for_each_path(graph, self.config.max_path_edges, |labels, start| {
            self.trie.insert(labels, gid, start);
        });
        self.graph_count += 1;
        gid
    }

    fn remove(&mut self, id: GraphId) -> bool {
        if id >= self.graph_count || !self.tombstones.mark(id) {
            return false;
        }
        if self.tombstones.should_compact(self.graph_count) {
            self.trie.purge(self.tombstones.ids());
        }
        true
    }

    fn filter_into(&self, query: &Graph, out: &mut CandidateSet) {
        // Same count-pruning fold as GGSX (identical trie contents); the
        // location information is *not* computed here — the verification
        // hooks recover it from the trie for the surviving candidates only,
        // so the borrowed-set fast path stays allocation-free.
        let query_counts = GgsxIndex::query_path_counts(query, self.config.max_path_edges);
        self.fold_candidates(&query_counts, out);
        self.tombstones.apply(out);
    }

    fn filter_into_cached(
        &self,
        query: &Graph,
        out: &mut CandidateSet,
        ctx: &mut FilterCacheCtx<'_>,
    ) {
        // The candidate bits come from the same count-pruning fold as GGSX,
        // so the cached fold is shared too; the location information stays
        // a verification-time concern and is never cached.
        let query_counts = GgsxIndex::query_path_counts(query, self.config.max_path_edges);
        fold_trie_cached(&self.trie, self.graph_count, &query_counts, out, ctx);
        self.tombstones.apply(out);
    }

    fn verify_set(
        &self,
        dataset: &Dataset,
        query: &Graph,
        candidates: &CandidateSet,
    ) -> Vec<GraphId> {
        // Location-restricted verification straight off the bitset: the
        // location pass probes the trie payloads for the survivors, then
        // each candidate is verified inside the components its locations
        // induce, spread over `config.threads` workers exactly like the
        // one-shot `query` path (the paper runs Grapes with 6; configure
        // `threads: 1` when an outer worker pool already saturates the
        // machine). The query's paths are enumerated a second time here
        // (the staged trait API hands over only the candidate bits); the
        // one-shot `query` path avoids that via `filter_with_locations`,
        // and the component restriction the locations buy far outweighs
        // one extra walk of a small query.
        let query_counts = GgsxIndex::query_path_counts(query, self.config.max_path_edges);
        let locations = self.locations_for(&query_counts, candidates);
        let matcher = Vf2Matcher::new(query);
        // Per-query thread fan-out only pays for itself on large candidate
        // sets; below the threshold (the common case once filtering has
        // done its job) verification stays in place and allocation-free,
        // which also keeps an outer multi-worker service from multiplying
        // thread counts on every query.
        const PARALLEL_VERIFY_MIN_CANDIDATES: usize = 64;
        if self.config.threads > 1 && candidates.len() >= PARALLEL_VERIFY_MIN_CANDIDATES {
            let ids = candidates.to_sorted_vec();
            let threads = self.config.threads.min(ids.len() / 32).max(1);
            parallel_retain(&ids, threads, |state, gid| {
                dataset
                    .graph(gid)
                    .map(|g| Self::verify_candidate(query, &matcher, state, g, locations.get(&gid)))
                    .unwrap_or(false)
            })
        } else {
            // Small candidate sets and single-thread configs verify in
            // place off the bits, allocation-free.
            crate::VERIFY_STATE.with(|cell| {
                let state = &mut *cell.borrow_mut();
                candidates
                    .iter()
                    .filter(|&gid| {
                        dataset
                            .graph(gid)
                            .map(|g| {
                                Self::verify_candidate(
                                    query,
                                    &matcher,
                                    state,
                                    g,
                                    locations.get(&gid),
                                )
                            })
                            .unwrap_or(false)
                    })
                    .collect()
            })
        }
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            distinct_features: self.trie.distinct_paths(),
            size_bytes: self.trie.memory_bytes(),
        }
    }

    fn verify(&self, dataset: &Dataset, query: &Graph, candidates: &[GraphId]) -> Vec<GraphId> {
        // Direct verification (no location info available for an externally
        // provided candidate list): parallel whole-graph VF2, one reusable
        // match state per worker.
        let matcher = Vf2Matcher::new(query);
        parallel_retain(candidates, self.config.threads, |state, gid| {
            dataset
                .graph(gid)
                .map(|g| matcher.matches_with(state, g))
                .unwrap_or(false)
        })
    }

    fn query(&self, dataset: &Dataset, query: &Graph) -> crate::QueryOutcome {
        let (candidates, locations) = self.filter_with_locations(query);
        let matcher = Vf2Matcher::new(query);
        let answers = parallel_retain(&candidates, self.config.threads, |state, gid| {
            dataset
                .graph(gid)
                .map(|g| Self::verify_candidate(query, &matcher, state, g, locations.get(&gid)))
                .unwrap_or(false)
        });
        crate::QueryOutcome {
            candidates,
            answers,
        }
    }
}

/// Retains the ids for which `keep` returns true, evaluating the predicate
/// in parallel across `threads` workers while preserving input order. Every
/// worker owns one [`MatchState`] for its whole chunk, so verification
/// scratch is allocated once per worker rather than once per candidate.
fn parallel_retain<F>(ids: &[GraphId], threads: usize, keep: F) -> Vec<GraphId>
where
    F: Fn(&mut MatchState, GraphId) -> bool + Sync,
{
    let threads = threads.max(1).min(ids.len().max(1));
    if threads <= 1 || ids.len() < 4 {
        let mut state = MatchState::new();
        return ids
            .iter()
            .copied()
            .filter(|&gid| keep(&mut state, gid))
            .collect();
    }
    let flags: Vec<bool> = std::thread::scope(|scope| {
        let chunk_size = ids.len().div_ceil(threads);
        let handles: Vec<_> = ids
            .chunks(chunk_size)
            .map(|chunk| {
                let keep = &keep;
                scope.spawn(move || {
                    let mut state = MatchState::new();
                    chunk
                        .iter()
                        .map(|&gid| keep(&mut state, gid))
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("grapes verification worker panicked"))
            .collect()
    });
    ids.iter()
        .zip(flags)
        .filter_map(|(&gid, keep)| keep.then_some(gid))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_answers;
    use sqbench_graph::GraphBuilder;

    fn dataset() -> Dataset {
        let tri = GraphBuilder::new("tri")
            .vertices(&[1, 1, 2])
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let path = GraphBuilder::new("path")
            .vertices(&[1, 2, 3])
            .edges(&[(0, 1), (1, 2)])
            .build()
            .unwrap();
        let star = GraphBuilder::new("star")
            .vertices(&[2, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap();
        let disconnected = GraphBuilder::new("disc")
            .vertices(&[1, 2, 3, 3])
            .edges(&[(0, 1), (2, 3)])
            .build()
            .unwrap();
        Dataset::from_graphs("ds", vec![tri, path, star, disconnected])
    }

    fn query(labels: &[u32], edges: &[(usize, usize)]) -> Graph {
        GraphBuilder::new("q")
            .vertices(labels)
            .edges(edges)
            .build()
            .unwrap()
    }

    #[test]
    fn sequential_and_parallel_builds_agree() {
        let ds = dataset();
        let seq = GrapesIndex::build(
            &ds,
            GrapesConfig {
                max_path_edges: 3,
                threads: 1,
            },
        );
        let par = GrapesIndex::build(
            &ds,
            GrapesConfig {
                max_path_edges: 3,
                threads: 3,
            },
        );
        let q = query(&[1, 2], &[(0, 1)]);
        assert_eq!(seq.filter(&q), par.filter(&q));
        assert_eq!(seq.stats().distinct_features, par.stats().distinct_features);
        assert_eq!(seq.trie.inserted_paths(), par.trie.inserted_paths());
    }

    #[test]
    fn query_returns_exact_answers() {
        let ds = dataset();
        let idx = GrapesIndex::build(&ds, GrapesConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1], vec![(0, 1)]),
            (vec![1, 2, 3], vec![(0, 1), (1, 2)]),
            (vec![2, 1, 1], vec![(0, 1), (0, 2)]),
            (vec![3, 3], vec![(0, 1)]),
        ] {
            let q = query(&labels, &edges);
            let outcome = idx.query(&ds, &q);
            assert_eq!(
                outcome.answers,
                exhaustive_answers(&ds, &q),
                "wrong answers for query {labels:?}"
            );
            for a in &outcome.answers {
                assert!(outcome.candidates.contains(a));
            }
        }
    }

    #[test]
    fn filtering_uses_location_information() {
        let ds = dataset();
        let idx = GrapesIndex::build(&ds, GrapesConfig::default());
        let q = query(&[1, 2], &[(0, 1)]);
        let (candidates, locations) = idx.filter_with_locations(&q);
        assert!(!candidates.is_empty());
        for gid in &candidates {
            let locs = locations.get(gid).expect("candidate has locations");
            assert!(!locs.is_empty());
            // Locations never exceed the graph's vertex count.
            assert!(locs.len() <= ds.graph(*gid).unwrap().vertex_count());
        }
    }

    #[test]
    fn grapes_candidates_never_looser_than_ggsx() {
        // Same filtering rule plus location info: Grapes candidates must be
        // a subset of (or equal to) GGSX candidates for the same parameters.
        let ds = dataset();
        let grapes = GrapesIndex::build(&ds, GrapesConfig::default());
        let ggsx = crate::ggsx::GgsxIndex::build(&ds, crate::GgsxConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2)]),
        ] {
            let q = query(&labels, &edges);
            let gc = grapes.filter(&q);
            let xc = ggsx.filter(&q);
            for gid in &gc {
                assert!(xc.contains(gid));
            }
        }
    }

    #[test]
    fn disconnected_query_falls_back_to_whole_graph_verification() {
        let ds = dataset();
        let idx = GrapesIndex::build(&ds, GrapesConfig::default());
        let q = GraphBuilder::new("q2").vertices(&[1, 3]).build().unwrap(); // two isolated vertices, disconnected query
        let outcome = idx.query(&ds, &q);
        assert_eq!(outcome.answers, exhaustive_answers(&ds, &q));
    }

    #[test]
    fn direct_verify_matches_vf2() {
        let ds = dataset();
        let idx = GrapesIndex::build(&ds, GrapesConfig::default());
        let q = query(&[1, 2], &[(0, 1)]);
        let all: Vec<GraphId> = ds.ids().collect();
        assert_eq!(idx.verify(&ds, &q, &all), exhaustive_answers(&ds, &q));
    }

    #[test]
    fn missing_feature_prunes_everything() {
        let ds = dataset();
        let idx = GrapesIndex::build(&ds, GrapesConfig::default());
        let q = query(&[9, 9], &[(0, 1)]);
        assert!(idx.filter(&q).is_empty());
    }

    #[test]
    fn index_size_larger_than_ggsx() {
        // Location information costs space: Grapes' trie must be at least as
        // large as GGSX's over the same dataset and path length.
        let ds = dataset();
        let grapes = GrapesIndex::build(&ds, GrapesConfig::default());
        let ggsx = crate::ggsx::GgsxIndex::build(&ds, crate::GgsxConfig::default());
        assert!(grapes.stats().size_bytes >= ggsx.stats().size_bytes);
    }

    #[test]
    fn insert_and_remove_track_rebuild_answers() {
        let mut ds = dataset();
        let mut idx = GrapesIndex::build(&ds, GrapesConfig::default());
        let extra = GraphBuilder::new("extra")
            .vertices(&[1, 2, 3, 3])
            .edges(&[(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(idx.insert(&extra), 4);
        ds.push(extra);
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        ds.remove(0);

        let rebuilt = GrapesIndex::build(&ds, GrapesConfig::default());
        for (labels, edges) in [
            (vec![1u32, 2], vec![(0usize, 1usize)]),
            (vec![1, 2, 3], vec![(0, 1), (1, 2)]),
            (vec![3, 3], vec![(0, 1)]),
            (vec![1, 1], vec![(0, 1)]),
        ] {
            let q = query(&labels, &edges);
            assert_eq!(idx.query(&ds, &q).answers, rebuilt.query(&ds, &q).answers);
            assert_eq!(idx.query(&ds, &q).answers, exhaustive_answers(&ds, &q));
        }
    }

    #[test]
    fn parallel_retain_preserves_order() {
        let ids: Vec<GraphId> = (0..20).collect();
        let kept = parallel_retain(&ids, 4, |_, gid| gid % 3 == 0);
        assert_eq!(kept, vec![0, 3, 6, 9, 12, 15, 18]);
        let kept_seq = parallel_retain(&ids, 1, |_, gid| gid % 3 == 0);
        assert_eq!(kept, kept_seq);
    }
}
