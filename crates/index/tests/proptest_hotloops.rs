//! Property tests for the raw-speed hot-loop kernels — the `hotloop-proptest`
//! tier-1 CI step.
//!
//! Three invariant families:
//!
//! 1. **Wide ≡ scalar kernels.** The 4×u64 unrolled intersection/union
//!    loops and the fused tombstone mask must be bit-identical to the
//!    one-word scalar reference on arbitrary sets — including the dead-id
//!    interaction: a tombstoned id must never resurface through any kernel.
//! 2. **Ordered VF2 ≡ unordered VF2.** The rarity/degree static matching
//!    order is a search-order change only: for every method's candidate
//!    set, verification under [`OrderPolicy::RarityDegree`] and
//!    [`OrderPolicy::PlacedNeighbors`] must keep exactly the same graphs.
//! 3. **Posting order survives ingest.** The frequency-ordered filter folds
//!    assume strictly ascending posting lists; arbitrary insert/remove
//!    interleavings (append-max inserts, lazily compacted removals) must
//!    preserve that, and the mutated index must keep answering exactly like
//!    one rebuilt from scratch over the surviving graphs.

use proptest::prelude::*;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_index::gindex::GIndex;
use sqbench_index::treedelta::TreeDeltaIndex;
use sqbench_index::{build_index, CandidateSet, GraphIndex, MethodConfig, MethodKind, Tombstones};
use sqbench_iso::{MatchState, OrderPolicy, Vf2Matcher};

fn dataset_from_seed(seed: u64, graphs: usize) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(9)
            .with_avg_density(0.15)
            .with_label_count(4)
            .with_seed(seed),
    )
    .generate()
}

/// Strategy: a sorted, deduplicated id list over `0..universe`.
fn sorted_ids(universe: usize, max_len: usize) -> impl Strategy<Value = Vec<GraphId>> {
    proptest::collection::vec(0usize..universe, 0..max_len).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wide intersection/union kernels are bit-identical to the scalar
    /// reference, and the fused intersect+mask equals the two-pass form.
    #[test]
    fn wide_kernels_equal_scalar_reference(
        universe in 1usize..600,
        a in sorted_ids(600, 300),
        b in sorted_ids(600, 300),
        dead in sorted_ids(600, 60),
    ) {
        let a: Vec<GraphId> = a.into_iter().filter(|&id| id < universe).collect();
        let b: Vec<GraphId> = b.into_iter().filter(|&id| id < universe).collect();
        let set_a = CandidateSet::from_sorted_ids(universe, &a);
        let set_b = CandidateSet::from_sorted_ids(universe, &b);
        // NB: tombstones may exceed the universe — the kernels must ignore
        // dead ids above it rather than touch out-of-range blocks.
        let tomb = Tombstones::from_sorted(&dead);

        let mut wide = set_a.clone();
        wide.intersect_with(&set_b);
        let mut scalar = set_a.clone();
        scalar.intersect_with_scalar(&set_b);
        prop_assert_eq!(wide.to_sorted_vec(), scalar.to_sorted_vec());

        let mut wide_u = set_a.clone();
        wide_u.union_with(&set_b);
        let mut scalar_u = set_a.clone();
        scalar_u.union_with_scalar(&set_b);
        prop_assert_eq!(wide_u.to_sorted_vec(), scalar_u.to_sorted_vec());

        let mut masked_wide = set_a.clone();
        tomb.apply(&mut masked_wide);
        let mut masked_scalar = set_a.clone();
        tomb.apply_scalar(&mut masked_scalar);
        prop_assert_eq!(masked_wide.to_sorted_vec(), masked_scalar.to_sorted_vec());

        // Fused intersect+mask ≡ intersect then mask.
        let mut fused = set_a.clone();
        fused.intersect_with_masked(&set_b, &tomb);
        let mut two_pass = set_a.clone();
        two_pass.intersect_with(&set_b);
        tomb.apply(&mut two_pass);
        prop_assert_eq!(fused.to_sorted_vec(), two_pass.to_sorted_vec());

        // No kernel may resurface a tombstoned id.
        for &id in dead.iter().filter(|&&id| id < universe) {
            prop_assert!(!fused.contains(id), "dead id {} resurfaced", id);
            prop_assert!(!masked_wide.contains(id), "dead id {} resurfaced", id);
        }
        // Lazy cardinality cache agrees with an exact popcount after the
        // whole kernel mix.
        prop_assert_eq!(fused.len(), fused.to_sorted_vec().len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every method: verifying the method's own candidate set under the
    /// rarity/degree order keeps exactly the graphs the legacy order keeps.
    #[test]
    fn ordered_vf2_answers_equal_unordered_for_all_methods(seed in 0u64..300) {
        let ds = dataset_from_seed(seed, 12);
        let config = MethodConfig::fast();
        let queries = QueryGen::new(seed ^ 0x000b_dea1).generate(&ds, 3, 4);
        for (kind, index) in MethodKind::ALL
            .iter()
            .map(|&kind| (kind, build_index(kind, &config, &ds)))
        {
            for (query, _) in queries.iter() {
                let mut candidates = CandidateSet::empty(index.universe());
                index.filter_into(query, &mut candidates);
                let by_order = |policy: OrderPolicy| -> Vec<GraphId> {
                    let matcher = Vf2Matcher::with_order(query, policy);
                    let mut state = MatchState::new();
                    candidates
                        .iter()
                        .filter(|&gid| {
                            ds.graph(gid)
                                .map(|g| matcher.matches_with(&mut state, g))
                                .unwrap_or(false)
                        })
                        .collect()
                };
                prop_assert_eq!(
                    by_order(OrderPolicy::RarityDegree),
                    by_order(OrderPolicy::PlacedNeighbors),
                    "matching order changed {}'s answers", kind.name()
                );
            }
        }
    }

    /// Posting lists stay strictly ascending through arbitrary
    /// insert/remove interleavings, and the mutated index answers exactly
    /// like a from-scratch rebuild over the surviving graphs.
    #[test]
    fn posting_order_survives_ingest_interleavings(
        seed in 0u64..300,
        ops in proptest::collection::vec((any::<bool>(), 0usize..16), 1..24),
    ) {
        let ds = dataset_from_seed(seed, 10);
        let pool = dataset_from_seed(seed ^ 0xfeed, 16);
        let config = MethodConfig::fast();
        let mut gindex = GIndex::build(&ds, config.gindex.clone());
        let mut treedelta = TreeDeltaIndex::build(&ds, config.treedelta.clone());

        // Mirror of the live dataset: graph per issued id, empty slot when
        // removed (matching the dataset tombstone model).
        let mut live: Vec<Option<Graph>> =
            ds.iter().map(|(_, g)| Some(g.clone())).collect();
        let mut next_pool = 0usize;
        for (is_insert, pick) in ops {
            if is_insert {
                let (_, g) = pool
                    .iter()
                    .nth(next_pool % pool.len())
                    .expect("pool graph");
                next_pool += 1;
                let gid_g = gindex.insert(g);
                let gid_t = treedelta.insert(g);
                prop_assert_eq!(gid_g, live.len());
                prop_assert_eq!(gid_t, live.len());
                live.push(Some(g.clone()));
            } else {
                let target = pick % live.len();
                let expect_removed = live[target].is_some();
                prop_assert_eq!(gindex.remove(target), expect_removed);
                prop_assert_eq!(treedelta.remove(target), expect_removed);
                live[target] = None;
            }
            prop_assert!(
                gindex.postings_strictly_ascending(),
                "gIndex posting order broken mid-interleaving"
            );
            prop_assert!(
                treedelta.postings_strictly_ascending(),
                "Tree+Δ posting order broken mid-interleaving"
            );
        }

        // Pin against a re-index from scratch: dead slots become empty
        // placeholder graphs (the dataset tombstone model), survivors keep
        // their ids, and answers must match exactly.
        let rebuilt_ds = Dataset::from_graphs(
            "rebuilt",
            live.iter()
                .enumerate()
                .map(|(i, slot)| {
                    slot.clone().unwrap_or_else(|| Graph::new(format!("dead-{i}")))
                })
                .collect(),
        );
        let fresh_g = GIndex::build(&rebuilt_ds, config.gindex.clone());
        let fresh_t = TreeDeltaIndex::build(&rebuilt_ds, config.treedelta.clone());
        for (query, _) in QueryGen::new(seed ^ 0x90de).generate(&ds, 3, 4).iter() {
            prop_assert_eq!(
                gindex.query(&rebuilt_ds, query).answers,
                fresh_g.query(&rebuilt_ds, query).answers,
                "mutated gIndex diverged from rebuild"
            );
            prop_assert_eq!(
                treedelta.query(&rebuilt_ds, query).answers,
                fresh_t.query(&rebuilt_ds, query).answers,
                "mutated Tree+Δ diverged from rebuild"
            );
        }
    }
}
