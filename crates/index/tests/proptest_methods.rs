//! Cross-method correctness properties.
//!
//! The central invariant of every filter-and-verify method: whatever the
//! filtering stage does, the verified answer set must equal the exhaustive
//! ground truth (VF2 against every graph in the dataset), and the candidate
//! set must be a superset of that ground truth (no false dismissals).
//! These properties are checked for all six methods over randomly generated
//! datasets and random-walk queries.

use proptest::prelude::*;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::Dataset;
use sqbench_index::{build_index, exhaustive_answers, MethodConfig, MethodKind};

/// Generates a small synthetic dataset deterministically from a seed.
fn dataset_from_seed(seed: u64, graphs: usize, nodes: usize, labels: u32) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(nodes)
            .with_avg_density(0.12)
            .with_label_count(labels)
            .with_seed(seed),
    )
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All six methods agree with the exhaustive ground truth on random
    /// datasets and random-walk queries of several sizes.
    #[test]
    fn all_methods_match_ground_truth(seed in 0u64..500) {
        let ds = dataset_from_seed(seed, 12, 10, 4);
        let config = MethodConfig::fast();
        let indexes: Vec<_> = MethodKind::ALL
            .iter()
            .map(|&kind| (kind, build_index(kind, &config, &ds)))
            .collect();
        let queries = QueryGen::new(seed ^ 0xabcd).generate(&ds, 3, 4);
        for (query, source) in queries.iter() {
            let truth = exhaustive_answers(&ds, query);
            // The source graph always contains the query it was extracted from.
            prop_assert!(truth.contains(&source));
            for (kind, index) in &indexes {
                let outcome = index.query(&ds, query);
                prop_assert_eq!(
                    &outcome.answers, &truth,
                    "method {} returned wrong answers", kind.name()
                );
                for answer in &truth {
                    prop_assert!(
                        outcome.candidates.contains(answer),
                        "method {} dropped a true answer during filtering",
                        kind.name()
                    );
                }
                // Candidates are sorted and deduplicated.
                let mut sorted = outcome.candidates.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted, outcome.candidates);
            }
        }
    }

    /// Larger (8- and 16-edge) queries keep the invariant for the two
    /// path-based methods and CT-Index (the methods the paper identifies as
    /// the practical choices), exercising deeper recursion in the matcher.
    #[test]
    fn path_methods_match_ground_truth_on_larger_queries(seed in 0u64..200) {
        let ds = dataset_from_seed(seed.wrapping_add(1000), 8, 14, 3);
        let config = MethodConfig::fast();
        let kinds = [MethodKind::Grapes, MethodKind::Ggsx, MethodKind::CtIndex];
        let indexes: Vec<_> = kinds
            .iter()
            .map(|&kind| (kind, build_index(kind, &config, &ds)))
            .collect();
        for size in [8usize, 16] {
            let queries = QueryGen::new(seed ^ 0x77).generate(&ds, 2, size);
            for (query, _) in queries.iter() {
                let truth = exhaustive_answers(&ds, query);
                for (kind, index) in &indexes {
                    let outcome = index.query(&ds, query);
                    prop_assert_eq!(
                        &outcome.answers, &truth,
                        "method {} wrong on {}-edge query", kind.name(), size
                    );
                }
            }
        }
    }
}
