//! Cross-method correctness properties.
//!
//! The central invariant of every filter-and-verify method: whatever the
//! filtering stage does, the verified answer set must equal the exhaustive
//! ground truth (VF2 against every graph in the dataset), and the candidate
//! set must be a superset of that ground truth (no false dismissals).
//! These properties are checked for all six methods over randomly generated
//! datasets and random-walk queries.

use proptest::prelude::*;
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, GraphId};
use sqbench_index::candidates::intersect_posting;
use sqbench_index::{
    build_index, exhaustive_answers, ggsx::GgsxIndex, gindex::GIndex, intersect_sorted,
    treedelta::TreeDeltaIndex, CandidateFold, CandidateSet, GraphIndex, MethodConfig, MethodKind,
    PostingList,
};

/// Generates a small synthetic dataset deterministically from a seed.
fn dataset_from_seed(seed: u64, graphs: usize, nodes: usize, labels: u32) -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(graphs)
            .with_avg_nodes(nodes)
            .with_avg_density(0.12)
            .with_label_count(labels)
            .with_seed(seed),
    )
    .generate()
}

/// Strategy: a sorted, deduplicated id list over `0..universe`.
fn sorted_ids(universe: usize, max_len: usize) -> impl Strategy<Value = Vec<GraphId>> {
    proptest::collection::vec(0usize..universe, 0..max_len).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids
    })
}

/// Reference union of two sorted id lists (linear merge).
fn union_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out: Vec<GraphId> = a.iter().chain(b.iter()).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All six methods agree with the exhaustive ground truth on random
    /// datasets and random-walk queries of several sizes.
    #[test]
    fn all_methods_match_ground_truth(seed in 0u64..500) {
        let ds = dataset_from_seed(seed, 12, 10, 4);
        let config = MethodConfig::fast();
        let indexes: Vec<_> = MethodKind::ALL
            .iter()
            .map(|&kind| (kind, build_index(kind, &config, &ds)))
            .collect();
        let queries = QueryGen::new(seed ^ 0xabcd).generate(&ds, 3, 4);
        for (query, source) in queries.iter() {
            let truth = exhaustive_answers(&ds, query);
            // The source graph always contains the query it was extracted from.
            prop_assert!(truth.contains(&source));
            for (kind, index) in &indexes {
                let outcome = index.query(&ds, query);
                prop_assert_eq!(
                    &outcome.answers, &truth,
                    "method {} returned wrong answers", kind.name()
                );
                for answer in &truth {
                    prop_assert!(
                        outcome.candidates.contains(answer),
                        "method {} dropped a true answer during filtering",
                        kind.name()
                    );
                }
                // Candidates are sorted and deduplicated.
                let mut sorted = outcome.candidates.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted, outcome.candidates);
            }
        }
    }

    /// The bitset engine agrees with the seed's sorted-`Vec` engine
    /// (`intersect_sorted`) on arbitrary id lists: intersection (streamed,
    /// set-set and galloping), union, membership and sorted iteration.
    #[test]
    fn candidate_engine_agrees_with_sorted_vec_reference(
        a in sorted_ids(193, 60),
        b in sorted_ids(193, 60),
    ) {
        const UNIVERSE: usize = 193; // force a partial trailing block
        let expected = intersect_sorted(&a, &b);

        // Streaming retain (the hot path of every filter fold).
        let mut streamed = CandidateSet::from_sorted_ids(UNIVERSE, &a);
        streamed.retain_sorted(b.iter().copied());
        prop_assert_eq!(streamed.to_sorted_vec(), expected.clone());
        prop_assert_eq!(streamed.len(), expected.len());

        // Set-set intersection and union.
        let set_a = CandidateSet::from_sorted_ids(UNIVERSE, &a);
        let set_b = CandidateSet::from_sorted_ids(UNIVERSE, &b);
        let mut inter = set_a.clone();
        inter.intersect_with(&set_b);
        prop_assert_eq!(inter.to_sorted_vec(), expected.clone());
        let mut uni = set_a.clone();
        uni.union_with(&set_b);
        prop_assert_eq!(uni.to_sorted_vec(), union_sorted(&a, &b));

        // Galloping posting-list intersection.
        prop_assert_eq!(intersect_posting(&a, &b), expected.clone());

        // PostingList bridge.
        let posting = PostingList::from_sorted(b.clone());
        let mut via_posting = CandidateSet::from_sorted_ids(UNIVERSE, &a);
        posting.intersect_into(&mut via_posting);
        prop_assert_eq!(via_posting.to_sorted_vec(), expected.clone());

        // Iteration is sorted and membership agrees with it.
        let mut last: Option<GraphId> = None;
        for id in streamed.iter() {
            prop_assert!(streamed.contains(id));
            prop_assert!(last.is_none_or(|prev| prev < id));
            last = Some(id);
        }
    }

    /// Folding many posting lists through one in-place bitset produces the
    /// same candidates as the seed's pairwise `Vec` intersection chain.
    #[test]
    fn candidate_fold_agrees_with_pairwise_intersection(
        lists in proptest::collection::vec(sorted_ids(150, 40), 1..6),
    ) {
        let mut reference: Option<Vec<GraphId>> = None;
        for list in &lists {
            reference = Some(match reference {
                None => list.clone(),
                Some(current) => intersect_sorted(&current, list),
            });
        }
        let mut fold = CandidateFold::new(150);
        for list in &lists {
            fold.apply_sorted(list.iter().copied());
        }
        prop_assert_eq!(fold.into_sorted_vec(), reference.unwrap());
    }

    /// The borrowed-set contract: `filter_into` must produce candidate sets
    /// bit-identical to the legacy `filter()` `Vec` contract for all six
    /// methods plus the scan baseline — *including* when the arena is dirty
    /// (stale bits, wrong universe) from serving another method's dataset,
    /// which is exactly how the query service reuses worker arenas.
    #[test]
    fn filter_into_bit_identical_to_legacy_filter(seed in 0u64..300) {
        let ds = dataset_from_seed(seed.wrapping_add(9000), 13, 10, 4);
        let config = MethodConfig::fast();
        let kinds = [
            MethodKind::Grapes,
            MethodKind::Ggsx,
            MethodKind::CtIndex,
            MethodKind::GIndex,
            MethodKind::TreeDelta,
            MethodKind::GCode,
            MethodKind::Scan,
        ];
        let indexes: Vec<_> = kinds
            .iter()
            .map(|&kind| (kind, build_index(kind, &config, &ds)))
            .collect();
        // One shared arena reused across every method and query, seeded
        // dirty: stale bits over a deliberately wrong universe.
        let mut arena = CandidateSet::full(7);
        let queries = QueryGen::new(seed ^ 0xf11e).generate(&ds, 3, 4);
        for (query, _) in queries.iter() {
            for (kind, index) in &indexes {
                let legacy = index.filter(query);
                index.filter_into(query, &mut arena);
                prop_assert_eq!(
                    arena.universe(),
                    index.universe(),
                    "{}: arena not re-targeted", kind.name()
                );
                prop_assert_eq!(
                    arena.to_sorted_vec(),
                    legacy.clone(),
                    "{}: borrowed-set filter diverged from legacy filter",
                    kind.name()
                );
                // Bit-identity with a freshly materialized set, not just
                // id-list equality.
                let fresh = CandidateSet::from_sorted_ids(index.universe(), &legacy);
                prop_assert_eq!(&arena, &fresh, "{}: sets not bit-identical", kind.name());
            }
        }
    }

    /// Migration invariance: the three posting-fold methods produce exactly
    /// the candidate sets of the seed's `Vec`-based filter (kept as
    /// `filter_reference`), and Grapes — same pruning rule over the same
    /// trie contents — matches GGSX. Tree+Δ is checked both before and
    /// after Δ features are learned.
    #[test]
    fn method_candidates_unchanged_by_bitset_migration(seed in 0u64..300) {
        let ds = dataset_from_seed(seed.wrapping_add(5000), 14, 10, 4);
        let config = MethodConfig::fast();
        let ggsx = GgsxIndex::build(&ds, config.ggsx.clone());
        let gindex = GIndex::build(&ds, config.gindex.clone());
        let treedelta = TreeDeltaIndex::build(&ds, config.treedelta.clone());
        let grapes = build_index(MethodKind::Grapes, &config, &ds);
        let queries = QueryGen::new(seed ^ 0x51ab).generate(&ds, 3, 4);
        for (query, _) in queries.iter() {
            prop_assert_eq!(ggsx.filter(query), ggsx.filter_reference(query));
            prop_assert_eq!(gindex.filter(query), gindex.filter_reference(query));
            prop_assert_eq!(treedelta.filter(query), treedelta.filter_reference(query));
            // Grapes applies the identical count-pruning rule to a trie with
            // identical per-graph counts, so its candidates equal GGSX's
            // when both use the same path length.
            prop_assert_eq!(grapes.filter(query), ggsx.filter(query));
            // Δ learning must not break the reference equivalence.
            let _ = treedelta.query(&ds, query);
            prop_assert_eq!(treedelta.filter(query), treedelta.filter_reference(query));
        }
    }

    /// Larger (8- and 16-edge) queries keep the invariant for the two
    /// path-based methods and CT-Index (the methods the paper identifies as
    /// the practical choices), exercising deeper recursion in the matcher.
    #[test]
    fn path_methods_match_ground_truth_on_larger_queries(seed in 0u64..200) {
        let ds = dataset_from_seed(seed.wrapping_add(1000), 8, 14, 3);
        let config = MethodConfig::fast();
        let kinds = [MethodKind::Grapes, MethodKind::Ggsx, MethodKind::CtIndex];
        let indexes: Vec<_> = kinds
            .iter()
            .map(|&kind| (kind, build_index(kind, &config, &ds)))
            .collect();
        for size in [8usize, 16] {
            let queries = QueryGen::new(seed ^ 0x77).generate(&ds, 2, size);
            for (query, _) in queries.iter() {
                let truth = exhaustive_answers(&ds, query);
                for (kind, index) in &indexes {
                    let outcome = index.query(&ds, query);
                    prop_assert_eq!(
                        &outcome.answers, &truth,
                        "method {} wrong on {}-edge query", kind.name(), size
                    );
                }
            }
        }
    }
}
