//! # sqbench-bench
//!
//! Shared helpers for the Criterion benchmark targets. Each bench target in
//! `benches/` regenerates one table or figure of the paper (printing the
//! same rows/series the paper reports) and additionally micro-benchmarks a
//! representative operation with Criterion.
//!
//! The experiment scale used by the benches sits between the test-suite
//! smoke scale and the laptop scale: big enough that the paper's relative
//! orderings (who wins, by roughly what factor) are visible, small enough
//! that `cargo bench --workspace` finishes in minutes rather than the
//! paper's multi-day grid.

use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen, QueryWorkload};
use sqbench_graph::Dataset;
use sqbench_harness::ExperimentScale;
use std::time::Duration;

/// The experiment scale used by all figure benches.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        graph_count: 60,
        avg_nodes: 24,
        avg_density: 0.08,
        label_count: 8,
        queries_per_size: 5,
        query_sizes: vec![4, 8, 16],
        real_dataset_scale: 0.004,
        time_budget: Duration::from_secs(300),
        seed: 20150831, // VLDB 2015 started on August 31st.
        query_threads: 4,
    }
}

/// A default synthetic dataset at bench scale ("sane defaults" shape).
pub fn default_dataset() -> Dataset {
    let scale = bench_scale();
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(scale.graph_count)
            .with_avg_nodes(scale.avg_nodes)
            .with_avg_density(scale.avg_density)
            .with_label_count(scale.label_count)
            .with_seed(scale.seed),
    )
    .generate()
}

/// Query workloads (one per size in the bench scale) over a dataset.
pub fn default_workloads(dataset: &Dataset) -> Vec<QueryWorkload> {
    let scale = bench_scale();
    QueryGen::new(scale.seed ^ 0xbe_ac_11).generate_all_sizes(
        dataset,
        scale.queries_per_size,
        &scale.query_sizes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_is_between_smoke_and_laptop() {
        let scale = bench_scale();
        assert!(scale.graph_count >= ExperimentScale::smoke().graph_count);
        assert!(scale.graph_count <= ExperimentScale::laptop().graph_count);
    }

    #[test]
    fn default_dataset_and_workloads_are_generated() {
        let ds = default_dataset();
        assert_eq!(ds.len(), bench_scale().graph_count);
        let workloads = default_workloads(&ds);
        assert_eq!(workloads.len(), 3);
    }
}
