//! Bench-regression gate: compares two `BENCH_<target>.json` files (as
//! written by the vendored criterion stand-in) and fails when any benchmark
//! shared by both regressed in median throughput by more than the
//! threshold.
//!
//! ```text
//! bench_compare <baseline.json> <candidate.json> [--threshold 0.20]
//! ```
//!
//! Throughput is `1 / median_ns`, so a throughput drop of more than
//! `threshold` (default 20%) means `candidate_ns > baseline_ns / (1 − t)`.
//! Benchmarks present on only one side are reported but never fail the
//! gate (new benchmarks must be able to land, retired ones to leave).
//! Exits 0 on pass, 1 on regression, 2 on usage/parse errors.

use std::process::ExitCode;

/// One `{"id": ..., "median_ns": ...}` entry.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    id: String,
    median_ns: f64,
}

/// Extracts the string value of `key` from a single JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Extracts the numeric value of `key` from a single JSON object line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let value: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    value.parse().ok()
}

/// Parses the result entries of a `BENCH_<target>.json` report. The format
/// is the stand-in's: one `{"id": ..., "median_ns": ...}` object per line
/// inside a `"results"` array.
fn parse_report(text: &str) -> Vec<Entry> {
    text.lines()
        .filter_map(|line| {
            let id = string_field(line, "id")?;
            let median_ns = number_field(line, "median_ns")?;
            Some(Entry { id, median_ns })
        })
        .collect()
}

fn run(baseline_path: &str, candidate_path: &str, threshold: f64) -> Result<bool, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline = parse_report(&read(baseline_path)?);
    let candidate = parse_report(&read(candidate_path)?);
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: no benchmark entries found"));
    }
    if candidate.is_empty() {
        return Err(format!("{candidate_path}: no benchmark entries found"));
    }

    let mut ok = true;
    for base in &baseline {
        let Some(cand) = candidate.iter().find(|c| c.id == base.id) else {
            println!("SKIP  {:<50} missing from candidate", base.id);
            continue;
        };
        // throughput ratio = base_ns / cand_ns (1.0 = unchanged, <1 slower)
        let ratio = base.median_ns / cand.median_ns;
        let regressed = ratio < 1.0 - threshold;
        let verdict = if regressed { "FAIL" } else { "ok  " };
        println!(
            "{verdict}  {:<50} base {:>12.1} ns  cand {:>12.1} ns  throughput {:>6.2}x",
            base.id, base.median_ns, cand.median_ns, ratio
        );
        if regressed {
            ok = false;
        }
    }
    for cand in &candidate {
        if !baseline.iter().any(|b| b.id == cand.id) {
            println!(
                "NEW   {:<50} {:>12.1} ns (no baseline)",
                cand.id, cand.median_ns
            );
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.20f64;
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            let Some(value) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--threshold needs a numeric argument");
                return ExitCode::from(2);
            };
            threshold = value;
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--threshold 0.20]");
        return ExitCode::from(2);
    };
    match run(baseline, candidate, threshold) {
        Ok(true) => {
            println!(
                "bench_compare: no regression beyond {:.0}%",
                threshold * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!(
                "bench_compare: median throughput regressed more than {:.0}%",
                threshold * 100.0
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "target": "micro_service",
  "results": [
    {"id": "micro_service_batch/oneshot/10000", "median_ns": 2000.0, "samples": 15, "iters_per_sample": 8},
    {"id": "micro_service_batch/workers4/10000", "median_ns": 1000.0, "samples": 15, "iters_per_sample": 8}
  ]
}"#;

    #[test]
    fn parses_standin_report() {
        let entries = parse_report(SAMPLE);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "micro_service_batch/oneshot/10000");
        assert_eq!(entries[1].median_ns, 1000.0);
    }

    #[test]
    fn field_extraction_handles_whitespace() {
        let line = r#"  {"id": "a/b/c",   "median_ns":   12.5e1, "samples": 3}"#;
        assert_eq!(string_field(line, "id").as_deref(), Some("a/b/c"));
        assert_eq!(number_field(line, "median_ns"), Some(125.0));
        assert_eq!(number_field(line, "missing"), None);
    }

    #[test]
    fn regression_detection_thresholds() {
        // 1.24x slower: within the 20% throughput threshold (1/1.24 ≈ 0.806).
        let base = Entry {
            id: "x".into(),
            median_ns: 100.0,
        };
        let within = 124.0;
        let beyond = 126.0;
        assert!(base.median_ns / within >= 0.80);
        assert!(base.median_ns / beyond < 0.80);
    }
}
