//! Figure 5: sensitivity to the number of distinct labels.
//!
//! Prints the four panels of the label sweep and benchmarks index
//! construction for the frequent-mining methods at the low- and high-label
//! extremes (the regime where the paper observes their opposite behaviour).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::bench_scale;
use sqbench_generator::{GraphGen, GraphGenConfig};
use sqbench_harness::experiments::fig5_labels;
use sqbench_harness::report;
use sqbench_index::{build_index, MethodConfig, MethodKind};

fn bench_fig5(c: &mut Criterion) {
    let scale = bench_scale();

    let figure = fig5_labels::run(&scale);
    println!("{}", report::render_text(&figure));

    let config = MethodConfig::default();
    let mut group = c.benchmark_group("fig5_label_alphabet_extremes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let sweep = fig5_labels::sweep_for(&scale);
    let extremes = [*sweep.first().unwrap(), *sweep.last().unwrap()];
    for labels in extremes {
        let dataset = GraphGen::new(
            GraphGenConfig::default()
                .with_graph_count(scale.graph_count)
                .with_avg_nodes(scale.avg_nodes)
                .with_avg_density(scale.avg_density)
                .with_label_count(labels)
                .with_seed(scale.seed),
        )
        .generate();
        for kind in [MethodKind::GIndex, MethodKind::TreeDelta, MethodKind::Ggsx] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("labels{labels}")),
                &kind,
                |b, &kind| b.iter(|| build_index(kind, &config, &dataset)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
