//! Throughput micro-benchmark of selective shard routing on a
//! label-skewed dataset: full fan-out vs. synopsis-routed waves.
//!
//! The dataset is 10k graphs in four **label-disjoint families**,
//! interleaved so round-robin placement over 4 shards keeps each family on
//! its own shard — the regime shard routing exists for. Three modes serve
//! the same 24-query workload (each query is a random walk inside one
//! family, so exactly one shard can hold its matches):
//!
//! * `fanout4` — 4 shards, every query probed on every shard (the PR 3
//!   baseline);
//! * `routed4` — the same 4 shards behind the synopsis [`Router`]: each
//!   query probes only the shards whose synopsis admits it (here: 1 of 4);
//! * `plan_only` — just the routing decision ([`Router::plan`] over the
//!   whole wave), isolating the overhead the router adds per wave.
//!
//! Before timing, the bench asserts the correctness gate: fanout, routed
//! and the oneshot `index.query()` answers are identical, and the routed
//! wave probes **strictly fewer** shards than fan-out. Routing savings are
//! real work avoided (index probe + filter + merge per skipped shard), so
//! unlike raw shard parallelism they show up even on a single core. The
//! committed `BENCH_micro_routing.json` baseline records this machine's
//! numbers for the CI regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_generator::{label_clustered, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{RoutingMode, ServiceOptions, ShardedService};
use sqbench_index::{build_index, MethodConfig, MethodKind};

const UNIVERSE: usize = 10_000;
const BATCH: usize = 24;
const SHARDS: usize = 4;
const FAMILIES: u32 = 4;

fn skewed_dataset() -> Dataset {
    label_clustered(
        &GraphGenConfig::default()
            .with_graph_count(UNIVERSE)
            .with_avg_nodes(10)
            .with_avg_density(0.2)
            .with_label_count(6)
            .with_seed(20150831),
        FAMILIES,
    )
}

fn skewed_queries(dataset: &Dataset) -> Vec<Graph> {
    QueryGen::new(0x0040_07ed)
        .generate(dataset, BATCH, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect()
}

/// One closed wave; answer counts only — the value the timed loops fold.
fn run_wave(service: &mut ShardedService, queries: &[&Graph]) -> Vec<usize> {
    service
        .run_wave(queries, None)
        .records
        .iter()
        .map(|r| r.answer_count())
        .collect()
}

/// One closed wave keeping the full answer id lists — what the
/// correctness gate compares, so a bug that returns the right *number* of
/// wrong graph ids cannot slip past it.
fn gate_wave(service: &mut ShardedService, queries: &[&Graph]) -> (Vec<Vec<GraphId>>, u64) {
    let report = service.run_wave(queries, None);
    let answers = report.records.iter().map(|r| r.answers.clone()).collect();
    (answers, report.shards_probed())
}

fn bench_routing(c: &mut Criterion) {
    let dataset = skewed_dataset();
    let config = MethodConfig::default();
    let queries = skewed_queries(&dataset);
    let refs: Vec<&Graph> = queries.iter().collect();

    let mut fanout = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &dataset,
        ServiceOptions::new().shards(SHARDS),
    );
    let mut routed = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &dataset,
        ServiceOptions::new()
            .shards(SHARDS)
            .routing(RoutingMode::Synopsis),
    );

    // Correctness gate before any timing: routing must be invisible in the
    // match sets — the full graph-id lists, not just their sizes — and
    // must actually skip shards on this skewed dataset.
    let index = build_index(MethodKind::Ggsx, &config, &dataset);
    let oneshot: Vec<Vec<GraphId>> = refs
        .iter()
        .map(|q| index.query(&dataset, q).answers)
        .collect();
    let (fanout_answers, fanout_probes) = gate_wave(&mut fanout, &refs);
    let (routed_answers, routed_probes) = gate_wave(&mut routed, &refs);
    assert_eq!(oneshot, fanout_answers, "fan-out diverged from oneshot");
    assert_eq!(oneshot, routed_answers, "routing changed a match set");
    assert_eq!(fanout_probes, (SHARDS * BATCH) as u64);
    assert!(
        routed_probes < fanout_probes,
        "routing probed {routed_probes} of {fanout_probes} — no savings on a label-skewed dataset"
    );

    let mut group = c.benchmark_group("micro_routing_wave");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_with_input(BenchmarkId::new("fanout4", UNIVERSE), &refs, |b, refs| {
        b.iter(|| run_wave(&mut fanout, refs))
    });
    group.bench_with_input(BenchmarkId::new("routed4", UNIVERSE), &refs, |b, refs| {
        b.iter(|| run_wave(&mut routed, refs))
    });
    group.bench_with_input(BenchmarkId::new("plan_only", UNIVERSE), &refs, |b, refs| {
        let router = routed.router();
        b.iter(|| {
            router
                .plan(refs, RoutingMode::Synopsis)
                .iter()
                .map(Vec::len)
                .sum::<usize>()
        })
    });
    group.finish();

    // Throughput summary straight from the recorded medians.
    let results = c.results();
    let median = |name: &str| {
        results
            .iter()
            .find(|r| r.id == format!("micro_routing_wave/{name}/{UNIVERSE}"))
            .map(|r| r.median_ns)
    };
    if let (Some(fan), Some(route), Some(plan)) =
        (median("fanout4"), median("routed4"), median("plan_only"))
    {
        let qps = |ns: f64| BATCH as f64 / (ns / 1e9);
        println!(
            "routing throughput @ {UNIVERSE} graphs / {BATCH}-query wave: \
             fanout4 {:.1} q/s, routed4 {:.1} q/s ({:.2}x; probes {} -> {}), \
             plan overhead {:.1} µs/wave ({:.4}% of the routed wave)",
            qps(fan),
            qps(route),
            fan / route,
            fanout_probes,
            routed_probes,
            plan / 1e3,
            100.0 * plan / route,
        );
    }
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
