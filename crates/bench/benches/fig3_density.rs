//! Figure 3: scalability with graph density.
//!
//! Prints the four panels of the density sweep and benchmarks index
//! construction per method at the densest sweep point (where the paper's
//! separation between exhaustive and mining methods is widest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::bench_scale;
use sqbench_generator::{GraphGen, GraphGenConfig};
use sqbench_harness::experiments::fig3_density;
use sqbench_harness::report;
use sqbench_index::{build_index, MethodConfig, MethodKind};

fn bench_fig3(c: &mut Criterion) {
    let scale = bench_scale();

    let figure = fig3_density::run(&scale);
    println!("{}", report::render_text(&figure));

    // Densest point of the sweep.
    let densest = *fig3_density::sweep_for(&scale)
        .last()
        .expect("sweep is non-empty");
    let dataset = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(scale.graph_count)
            .with_avg_nodes(scale.avg_nodes)
            .with_avg_density(densest)
            .with_label_count(scale.label_count)
            .with_seed(scale.seed),
    )
    .generate();
    let config = MethodConfig::default();
    let mut group = c.benchmark_group("fig3_index_build_densest_point");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in MethodKind::ALL {
        group.bench_with_input(BenchmarkId::new("build", kind.name()), &kind, |b, &kind| {
            b.iter(|| build_index(kind, &config, &dataset))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
