//! Figure 4: query processing time vs. density, per query size.
//!
//! Prints one report per query size (the paper's panels (a)–(d)) and
//! benchmarks query processing per query size for the two path-based
//! methods, which the paper finds largely insensitive to query size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::{bench_scale, default_dataset};
use sqbench_generator::QueryGen;
use sqbench_harness::experiments::fig4_query_size;
use sqbench_harness::report;
use sqbench_index::{build_index, MethodConfig, MethodKind};

fn bench_fig4(c: &mut Criterion) {
    let scale = bench_scale();

    for figure in fig4_query_size::run(&scale) {
        println!("{}", report::render_text(&figure));
    }

    let dataset = default_dataset();
    let config = MethodConfig::default();
    let mut group = c.benchmark_group("fig4_query_size_sensitivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [MethodKind::Grapes, MethodKind::Ggsx] {
        let index = build_index(kind, &config, &dataset);
        for size in [4usize, 8, 16, 32] {
            let workload = QueryGen::new(scale.seed).generate(&dataset, 5, size);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), size),
                &workload,
                |b, workload| {
                    b.iter(|| {
                        for (q, _) in workload.iter() {
                            criterion::black_box(index.query(&dataset, q));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
