//! Throughput micro-benchmark of the cross-query caching layer on a
//! Zipf-skewed repeat-heavy workload: cache-disabled vs. warmed caches.
//!
//! Real query logs are skewed — a few hot queries account for most of the
//! traffic. The workload here makes that explicit: 12 distinct small
//! queries (4-edge walks, all under the canonical-key vertex bound, so
//! every one is answer-memo eligible) are sampled 48 times with Zipf(1)
//! weights, so the hottest query appears ~12x more often than the
//! coldest. Each of the 7 methods then serves the same batch two ways:
//!
//! * `<method>_cold` — [`CachePolicy::disabled`]: every repeat pays the
//!   full filter + verify pipeline (the pre-caching baseline);
//! * `<method>_warm` — [`CachePolicy::enabled`] after one priming pass:
//!   repeats hit the answer memo at admission and skip the pipeline, and
//!   the methods with cacheable posting lists also serve filter-stage
//!   feature hits.
//!
//! Before timing, the bench asserts the correctness gate: cold and warm
//! answer id lists are identical (the warm service is already serving
//! from cache by then, so hits are exercised, not just cold misses).
//! After timing it asserts the tentpole acceptance bar: warm median
//! throughput at least 3x cold for at least 4 of the 7 methods. The
//! committed `BENCH_micro_cache.json` baseline records this machine's
//! numbers for the CI regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{CachePolicy, QueryService, ServiceOptions};
use sqbench_index::{build_index, MethodConfig, MethodKind};

const UNIVERSE: usize = 2_000;
const POOL: usize = 12;
const BATCH: usize = 48;

const METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

fn dataset() -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(UNIVERSE)
            .with_avg_nodes(10)
            .with_avg_density(0.18)
            .with_label_count(5)
            .with_seed(20150901),
    )
    .generate()
}

/// 48 queries Zipf(1)-sampled from a 12-query pool: weight of the query
/// at popularity rank r is 1/(r+1). Sampling uses a fixed-seed LCG so the
/// workload is byte-identical on every run and machine.
fn zipf_workload(dataset: &Dataset) -> Vec<Graph> {
    let pool: Vec<Graph> = QueryGen::new(0x0ca_c4ed)
        .generate(dataset, POOL, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect();
    let weights: Vec<f64> = (0..pool.len()).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = 0x5eed_cafe_u64;
    let mut queries = Vec::with_capacity(BATCH);
    for _ in 0..BATCH {
        // Numerical Recipes LCG; top bits into [0, 1).
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut pick = pool.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                pick = i;
                break;
            }
            u -= w;
        }
        queries.push(pool[pick].clone());
    }
    queries
}

/// One closed batch; answer counts only — the value the timed loops fold.
fn run_batch(service: &mut QueryService, queries: &[&Graph]) -> usize {
    service
        .run_batch(queries, None)
        .records
        .iter()
        .map(|r| r.as_ref().map_or(0, |rec| rec.answers.len()))
        .sum()
}

/// One closed batch keeping the full answer id lists — what the
/// correctness gate compares, so a stale cache entry that returns the
/// right *number* of wrong graph ids cannot slip past it.
fn gate_batch(service: &mut QueryService, queries: &[&Graph]) -> Vec<Vec<GraphId>> {
    service
        .run_batch(queries, None)
        .records
        .iter()
        .map(|r| r.as_ref().expect("query completed").answers.clone())
        .collect()
}

fn bench_cache(c: &mut Criterion) {
    let dataset = dataset();
    let config = MethodConfig::default();
    let queries = zipf_workload(&dataset);
    let refs: Vec<&Graph> = queries.iter().collect();

    // Two indexes per method (the services borrow them), built up front so
    // they outlive the timed loops.
    let indexes: Vec<_> = METHODS
        .iter()
        .map(|&kind| {
            (
                build_index(kind, &config, &dataset),
                build_index(kind, &config, &dataset),
            )
        })
        .collect();
    let mut services = Vec::new();
    for (kind, (cold_index, warm_index)) in METHODS.iter().copied().zip(&indexes) {
        let mut cold = QueryService::new(&**cold_index, &dataset, ServiceOptions::new());
        let mut warm = QueryService::new(
            &**warm_index,
            &dataset,
            ServiceOptions::new().cache(CachePolicy::enabled()),
        );

        // Prime the caches, then gate: the warm batch below is served
        // substantially from the answer memo, and its answers must still
        // be bit-identical to the cache-disabled service's.
        gate_batch(&mut warm, &refs);
        let cold_answers = gate_batch(&mut cold, &refs);
        let warm_answers = gate_batch(&mut warm, &refs);
        assert_eq!(
            cold_answers,
            warm_answers,
            "{}: caching changed a match set",
            kind.name()
        );
        let counters = warm.cache_counters();
        assert!(
            counters.answer_hits > 0,
            "{}: Zipf repeats must hit the answer memo before timing",
            kind.name()
        );
        services.push((kind, cold, warm));
    }

    let mut group = c.benchmark_group("micro_cache");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (kind, cold, warm) in &mut services {
        let name = kind.name();
        group.bench_with_input(
            BenchmarkId::new(format!("{name}_cold"), UNIVERSE),
            &refs,
            |b, refs| b.iter(|| run_batch(cold, refs)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{name}_warm"), UNIVERSE),
            &refs,
            |b, refs| b.iter(|| run_batch(warm, refs)),
        );
    }
    group.finish();

    // The acceptance bar: ≥3x warm-over-cold median throughput for ≥4 of
    // the 7 methods, straight from the recorded medians.
    let results = c.results();
    let median = |name: &str, mode: &str| {
        results
            .iter()
            .find(|r| r.id == format!("micro_cache/{name}_{mode}/{UNIVERSE}"))
            .map(|r| r.median_ns)
    };
    let mut passing = 0;
    for kind in METHODS {
        let name = kind.name();
        if let (Some(cold_ns), Some(warm_ns)) = (median(name, "cold"), median(name, "warm")) {
            let speedup = cold_ns / warm_ns;
            let qps = |ns: f64| BATCH as f64 / (ns / 1e9);
            println!(
                "cache throughput @ {UNIVERSE} graphs / {BATCH}-query Zipf batch: \
                 {name} cold {:.1} q/s, warm {:.1} q/s ({speedup:.2}x)",
                qps(cold_ns),
                qps(warm_ns),
            );
            if speedup >= 3.0 {
                passing += 1;
            }
        }
    }
    assert!(
        passing >= 4,
        "only {passing} of {} methods reached 3x warm-over-cold; the caching \
         layer is not paying for itself on a Zipf-skewed workload",
        METHODS.len()
    );
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
