//! Throughput micro-benchmark of the sharded query service over a
//! 10k-graph synthetic dataset.
//!
//! Four execution modes serve the same 24-query workload:
//!
//! * `unsharded`    — the single-index batch service (1 worker), the PR 2
//!   baseline;
//! * `shards4_rr`   — 4 shards, round-robin placement, each shard a
//!   1-worker pool, waves fanned out to all shards concurrently;
//! * `shards4_lpt`  — 4 shards, size-balanced (LPT) placement;
//! * `admission4`   — the open path: 24 queries submitted to the bounded
//!   admission queue, then drained through the 4-shard service (measures
//!   the submit + drain overhead on top of the wave itself).
//!
//! Before timing, the bench asserts every mode returns the oneshot
//! `index.query()` answers — sharding must be invisible in match sets. On
//! a single-core container all modes land within noise of each other
//! (shard pools cannot overlap); the ≥1.5× shard-parallel gain only shows
//! on multi-core runners. The committed `BENCH_micro_sharded.json`
//! baseline records this machine's numbers for the CI regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph};
use sqbench_harness::service::{
    AdmissionQueue, QueryService, ServiceOptions, ShardStrategy, ShardedService,
};
use sqbench_index::{build_index, MethodConfig, MethodKind};

const UNIVERSE: usize = 10_000;
const BATCH: usize = 24;
const SHARDS: usize = 4;

fn sharded_dataset() -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(UNIVERSE)
            .with_avg_nodes(10)
            .with_avg_density(0.2)
            .with_label_count(6)
            .with_seed(20150831),
    )
    .generate()
}

fn sharded_queries(dataset: &Dataset) -> Vec<Graph> {
    QueryGen::new(0x005e_aded)
        .generate(dataset, BATCH, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect()
}

/// One closed wave through a sharded service; per-query answer counts.
fn run_wave(service: &mut ShardedService, queries: &[&Graph]) -> Vec<usize> {
    service
        .run_wave(queries, None)
        .records
        .iter()
        .map(|r| r.answer_count())
        .collect()
}

/// The open path: submit the whole workload, then drain it as one wave.
fn run_admission(service: &mut ShardedService, queries: &[Graph]) -> Vec<usize> {
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(queries.len()));
    for q in queries {
        queue
            .submit(q.clone(), None)
            .expect("queue sized for the workload");
    }
    service
        .drain(&queue, None)
        .records
        .iter()
        .map(|r| r.answer_count())
        .collect()
}

fn bench_sharded(c: &mut Criterion) {
    let dataset = sharded_dataset();
    let config = MethodConfig::default();
    let queries = sharded_queries(&dataset);
    let refs: Vec<&Graph> = queries.iter().collect();

    let index = build_index(MethodKind::Ggsx, &config, &dataset);
    let mut unsharded = QueryService::new(&*index, &dataset, ServiceOptions::new().workers(1));
    let mut rr = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &dataset,
        ServiceOptions::new().shards(SHARDS),
    );
    let mut lpt = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &dataset,
        ServiceOptions::new()
            .shards(SHARDS)
            .strategy(ShardStrategy::SizeBalanced),
    );

    // Correctness gate before any timing: sharding must be invisible in
    // the match sets — every mode equals the oneshot per-query answers.
    let oneshot: Vec<usize> = refs
        .iter()
        .map(|q| index.query(&dataset, q).answers.len())
        .collect();
    let unsharded_counts: Vec<usize> = unsharded
        .run_batch(&refs, None)
        .records
        .iter()
        .map(|r| r.as_ref().expect("no deadline").answer_count())
        .collect();
    assert_eq!(oneshot, unsharded_counts);
    assert_eq!(oneshot, run_wave(&mut rr, &refs));
    assert_eq!(oneshot, run_wave(&mut lpt, &refs));
    assert_eq!(oneshot, run_admission(&mut rr, &queries));

    let mut group = c.benchmark_group("micro_sharded_wave");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_with_input(BenchmarkId::new("unsharded", UNIVERSE), &refs, |b, refs| {
        b.iter(|| {
            unsharded
                .run_batch(refs, None)
                .records
                .iter()
                .flatten()
                .map(|r| r.answer_count())
                .sum::<usize>()
        })
    });
    group.bench_with_input(
        BenchmarkId::new("shards4_rr", UNIVERSE),
        &refs,
        |b, refs| b.iter(|| run_wave(&mut rr, refs)),
    );
    group.bench_with_input(
        BenchmarkId::new("shards4_lpt", UNIVERSE),
        &refs,
        |b, refs| b.iter(|| run_wave(&mut lpt, refs)),
    );
    group.bench_with_input(
        BenchmarkId::new("admission4", UNIVERSE),
        &queries,
        |b, queries| b.iter(|| run_admission(&mut rr, queries)),
    );
    group.finish();

    // Throughput summary straight from the recorded medians.
    let results = c.results();
    let median = |name: &str| {
        results
            .iter()
            .find(|r| r.id == format!("micro_sharded_wave/{name}/{UNIVERSE}"))
            .map(|r| r.median_ns)
    };
    if let (Some(base), Some(rr_ns), Some(lpt_ns), Some(adm)) = (
        median("unsharded"),
        median("shards4_rr"),
        median("shards4_lpt"),
        median("admission4"),
    ) {
        let qps = |ns: f64| BATCH as f64 / (ns / 1e9);
        println!(
            "sharded throughput @ {UNIVERSE} graphs / {BATCH}-query wave: \
             unsharded {:.1} q/s, shards4_rr {:.1} q/s, shards4_lpt {:.1} q/s, \
             admission4 {:.1} q/s (rr vs unsharded {:.2}x; admission overhead {:.2}x; cores: {})",
            qps(base),
            qps(rr_ns),
            qps(lpt_ns),
            qps(adm),
            base / rr_ns,
            adm / rr_ns,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
    }
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
