//! Raw-speed A/B micro-benchmarks of the four filter/verify hot-loop
//! optimisations, each timed against the implementation it replaced:
//!
//! * `hotloop_intersect` — the 4×u64 wide intersection/mask kernels of
//!   [`CandidateSet`] vs the one-word-at-a-time scalar loops they replaced
//!   (kept as `*_scalar` for exactly this comparison);
//! * `hotloop_posting_order` — a multi-feature posting fold applied
//!   rarest-feature-first (what every method's `filter_into` now does) vs
//!   the unordered arrival-order fold;
//! * `hotloop_vf2_order` — generic VF2 under the rarity/degree static
//!   matching order ([`OrderPolicy::RarityDegree`], the new default) vs the
//!   legacy placed-neighbors order ([`OrderPolicy::PlacedNeighbors`]);
//! * `hotloop_routing` — sharded waves under fingerprint-sharpened routing
//!   ([`RoutingMode::SynopsisFingerprint`]) vs the bound checks alone
//!   ([`RoutingMode::Synopsis`]), on a workload whose decoy shards
//!   the bounds admit but the path-fingerprint content refutes.
//!
//! A fifth group, `gallop_crossover`, measures where galloping intersection
//! overtakes the linear merge across size-skew ratios — the measurement
//! behind [`sqbench_index::candidates::GALLOP_CROSSOVER`].
//!
//! Every axis asserts its correctness gate **before** timing: both sides of
//! each A/B pair must produce identical results, and the ordered-VF2 gate
//! additionally pins full `query()` answers of all seven methods to the
//! scan oracle. The committed `BENCH_micro_hotloops.json` baseline feeds
//! the CI regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphBuilder, GraphId};
use sqbench_harness::service::{RoutingMode, ServiceOptions, ShardedService};
use sqbench_index::candidates::{
    intersect_gallop, intersect_posting, CandidateSet, Tombstones, GALLOP_CROSSOVER,
};
use sqbench_index::{build_index, intersect_sorted, MethodConfig, MethodKind};
use sqbench_iso::{MatchState, OrderPolicy, Vf2Matcher};

const ALL_METHODS: [MethodKind; 7] = [
    MethodKind::Grapes,
    MethodKind::Ggsx,
    MethodKind::CtIndex,
    MethodKind::GIndex,
    MethodKind::TreeDelta,
    MethodKind::GCode,
    MethodKind::Scan,
];

// ---------------------------------------------------------------- intersect

const INTERSECT_UNIVERSE: usize = 100_000;

/// Candidate sets shaped like a multi-feature filter fold: densities from
/// ~1/2 down to ~1/9, plus a ~1% tombstone mask.
fn intersect_fixture() -> (CandidateSet, Vec<CandidateSet>, Tombstones) {
    let sets: Vec<CandidateSet> = (0..8)
        .map(|i| {
            let stride = i + 2;
            let ids: Vec<GraphId> = (0..INTERSECT_UNIVERSE)
                .filter(|id| id % stride == i % stride)
                .collect();
            CandidateSet::from_sorted_ids(INTERSECT_UNIVERSE, &ids)
        })
        .collect();
    let dead_ids: Vec<GraphId> = (0..INTERSECT_UNIVERSE).step_by(101).collect();
    let dead = Tombstones::from_sorted(&dead_ids);
    (CandidateSet::full(INTERSECT_UNIVERSE), sets, dead)
}

fn fold_intersect_wide(base: &CandidateSet, sets: &[CandidateSet], dead: &Tombstones) -> usize {
    let mut acc = base.clone();
    for s in sets {
        acc.intersect_with(s);
    }
    dead.apply(&mut acc);
    acc.len()
}

fn fold_intersect_scalar(base: &CandidateSet, sets: &[CandidateSet], dead: &Tombstones) -> usize {
    let mut acc = base.clone();
    for s in sets {
        acc.intersect_with_scalar(s);
    }
    dead.apply_scalar(&mut acc);
    acc.len()
}

// ------------------------------------------------------------ posting order

const POSTING_UNIVERSE: usize = 100_000;

/// Posting lists in *arrival* order: dense features first, the rarest last
/// — the worst case the frequency-ordered fold exists to avoid.
fn posting_fixture() -> Vec<Vec<GraphId>> {
    [2usize, 3, 4, 6, 50, 400]
        .iter()
        .map(|&stride| (0..POSTING_UNIVERSE).step_by(stride).collect())
        .collect()
}

fn fold_postings(lists: &[&Vec<GraphId>]) -> Vec<GraphId> {
    let mut acc: Vec<GraphId> = lists[0].clone();
    for list in &lists[1..] {
        if acc.is_empty() {
            break;
        }
        acc = intersect_posting(&acc, list);
    }
    acc
}

// ---------------------------------------------------------------- vf2 order

fn vf2_dataset() -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(300)
            .with_avg_nodes(12)
            .with_avg_density(0.25)
            .with_label_count(3)
            .with_seed(0x1707_100b),
    )
    .generate()
}

/// Scan-verify the whole dataset with one matcher; returns per-graph
/// verdicts (the gate compares these across order policies).
fn scan_verify(matcher: &Vf2Matcher<'_>, dataset: &Dataset) -> Vec<bool> {
    dataset.iter().map(|(_, g)| matcher.matches(g)).collect()
}

// ------------------------------------------------------------------ routing

const ROUTE_SHARDS: usize = 4;
const ROUTE_FAMILY_GRAPHS: usize = 300;

/// A connected chain over `palette`, cycling to `len` vertices.
fn chain_graph(name: String, palette: &[u32], len: usize) -> Graph {
    let labels: Vec<u32> = (0..len).map(|i| palette[i % palette.len()]).collect();
    let edges: Vec<(usize, usize)> = (1..len).map(|i| (i - 1, i)).collect();
    GraphBuilder::new(name)
        .vertices(&labels)
        .edges(&edges)
        .build()
        .unwrap()
}

/// A decoy with the *same* label counts and edge label pairs as the chain —
/// every chain edge becomes a disconnected two-vertex edge — plus two
/// degree-3 hubs so the cumulative degree histogram dominates small chain
/// queries too. Bound synopses admit chain queries against it; no path of
/// two or more edges from the chain exists in it, so the shard's path
/// fingerprint refutes them.
fn decoy_graph(name: String, palette: &[u32], len: usize) -> Graph {
    let chain_labels: Vec<u32> = (0..len).map(|i| palette[i % palette.len()]).collect();
    let mut labels: Vec<u32> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for w in chain_labels.windows(2) {
        let base = labels.len();
        labels.extend([w[0], w[1]]);
        edges.push((base, base + 1));
    }
    // Two hubs: hub label deliberately outside the palette (label 100+),
    // so the hub's own edges add no chain-relevant label pairs.
    for hub in 0..2 {
        let base = labels.len();
        labels.extend([100 + hub, 100 + hub, 100 + hub, 100 + hub]);
        edges.extend([(base, base + 1), (base, base + 2), (base, base + 3)]);
    }
    GraphBuilder::new(name)
        .vertices(&labels)
        .edges(&edges)
        .build()
        .unwrap()
}

/// Four interleaved families over two label palettes: shard 0 hosts
/// palette-A chains, shard 1 palette-A decoys, shards 2/3 the same for
/// palette B (round-robin placement keeps each family on its own shard).
/// Chain queries are bounds-admitted by both their palette's shards but
/// fingerprint-admitted only by the chain shard.
fn routing_dataset() -> Dataset {
    const PALETTE_A: [u32; 5] = [0, 1, 2, 3, 4];
    const PALETTE_B: [u32; 5] = [5, 6, 7, 8, 9];
    let mut graphs = Vec::new();
    for i in 0..ROUTE_FAMILY_GRAPHS {
        let len = 4 + i % 4;
        graphs.push(chain_graph(format!("a-chain-{i}"), &PALETTE_A, len));
        graphs.push(decoy_graph(format!("a-decoy-{i}"), &PALETTE_A, len));
        graphs.push(chain_graph(format!("b-chain-{i}"), &PALETTE_B, len));
        graphs.push(decoy_graph(format!("b-decoy-{i}"), &PALETTE_B, len));
    }
    Dataset::from_graphs("hotloop-routing", graphs)
}

fn routing_queries() -> Vec<Graph> {
    let mut queries = Vec::new();
    for palette in [[0u32, 1, 2, 3, 4], [5, 6, 7, 8, 9]] {
        for start in 0..3 {
            let labels: Vec<u32> = palette[start..start + 3].to_vec();
            let edges = [(0usize, 1usize), (1, 2)];
            queries.push(
                GraphBuilder::new(format!("q-{}-{start}", palette[0]))
                    .vertices(&labels)
                    .edges(&edges)
                    .build()
                    .unwrap(),
            );
        }
    }
    queries
}

fn wave_answers(service: &mut ShardedService, queries: &[&Graph]) -> (Vec<Vec<GraphId>>, u64) {
    let report = service.run_wave(queries, None);
    let answers = report.records.iter().map(|r| r.answers.clone()).collect();
    (answers, report.shards_probed())
}

// --------------------------------------------------------------------- main

fn bench_hotloops(c: &mut Criterion) {
    // ---- Axis 1: wide vs scalar intersection kernels.
    let (base, sets, dead) = intersect_fixture();
    {
        let mut wide = base.clone();
        let mut scalar = base.clone();
        for s in &sets {
            wide.intersect_with(s);
            scalar.intersect_with_scalar(s);
        }
        dead.apply(&mut wide);
        dead.apply_scalar(&mut scalar);
        assert_eq!(
            wide.to_sorted_vec(),
            scalar.to_sorted_vec(),
            "wide kernels diverged from the scalar reference"
        );
    }
    let mut group = c.benchmark_group("hotloop_intersect");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_with_input(
        BenchmarkId::new("scalar", INTERSECT_UNIVERSE),
        &(&base, &sets, &dead),
        |b, (base, sets, dead)| b.iter(|| fold_intersect_scalar(base, sets, dead)),
    );
    group.bench_with_input(
        BenchmarkId::new("wide", INTERSECT_UNIVERSE),
        &(&base, &sets, &dead),
        |b, (base, sets, dead)| b.iter(|| fold_intersect_wide(base, sets, dead)),
    );
    group.finish();

    // ---- Axis 2: arrival-order vs rarest-first posting folds.
    let lists = posting_fixture();
    let arrival: Vec<&Vec<GraphId>> = lists.iter().collect();
    let mut rarest_first = arrival.clone();
    rarest_first.sort_by_key(|l| l.len());
    assert_eq!(
        fold_postings(&arrival),
        fold_postings(&rarest_first),
        "posting order changed the fold result"
    );
    let mut group = c.benchmark_group("hotloop_posting_order");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_with_input(
        BenchmarkId::new("arrival", POSTING_UNIVERSE),
        &arrival,
        |b, lists| b.iter(|| fold_postings(lists)),
    );
    group.bench_with_input(
        BenchmarkId::new("rarest_first", POSTING_UNIVERSE),
        &rarest_first,
        |b, lists| b.iter(|| fold_postings(lists)),
    );
    group.finish();

    // ---- Axis 3: legacy vs rarity/degree VF2 matching order.
    let vf2_ds = vf2_dataset();
    let vf2_queries: Vec<Graph> = QueryGen::new(0x0f2e_0a0b)
        .generate(&vf2_ds, 12, 5)
        .iter()
        .map(|(q, _)| q.clone())
        .collect();
    // Gate 1: identical verdicts on every (query, graph) pair.
    for q in &vf2_queries {
        let legacy = Vf2Matcher::with_order(q, OrderPolicy::PlacedNeighbors);
        let rarity = Vf2Matcher::with_order(q, OrderPolicy::RarityDegree);
        assert_eq!(
            scan_verify(&legacy, &vf2_ds),
            scan_verify(&rarity, &vf2_ds),
            "matching order changed a verdict for query {}",
            q.name()
        );
    }
    // Gate 2: the full ordered pipeline (filter + ordered verify) matches
    // the scan oracle for every one of the seven methods.
    let gate_config = MethodConfig::fast();
    let oracle = build_index(MethodKind::Scan, &gate_config, &vf2_ds);
    let expected: Vec<Vec<GraphId>> = vf2_queries
        .iter()
        .map(|q| oracle.query(&vf2_ds, q).answers)
        .collect();
    for kind in ALL_METHODS {
        let index = build_index(kind, &gate_config, &vf2_ds);
        for (qi, q) in vf2_queries.iter().enumerate() {
            assert_eq!(
                index.query(&vf2_ds, q).answers,
                expected[qi],
                "{} diverged from the scan oracle on query {qi}",
                kind.name()
            );
        }
    }
    // Matchers are built once and the VF2 scratch is reused across the whole
    // sweep (the production configuration), so the timed loop isolates the
    // search-order effect instead of allocator noise.
    let legacy_matchers: Vec<Vf2Matcher<'_>> = vf2_queries
        .iter()
        .map(|q| Vf2Matcher::with_order(q, OrderPolicy::PlacedNeighbors))
        .collect();
    let rarity_matchers: Vec<Vf2Matcher<'_>> = vf2_queries
        .iter()
        .map(|q| Vf2Matcher::with_order(q, OrderPolicy::RarityDegree))
        .collect();
    let mut group = c.benchmark_group("hotloop_vf2_order");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_with_input(
        BenchmarkId::new("placed_neighbors", vf2_ds.len()),
        &(&vf2_ds, &legacy_matchers),
        |b, (ds, matchers)| {
            let mut state = MatchState::new();
            b.iter(|| {
                matchers
                    .iter()
                    .map(|m| {
                        ds.iter()
                            .filter(|(_, g)| m.matches_with(&mut state, g))
                            .count()
                    })
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("rarity_degree", vf2_ds.len()),
        &(&vf2_ds, &rarity_matchers),
        |b, (ds, matchers)| {
            let mut state = MatchState::new();
            b.iter(|| {
                matchers
                    .iter()
                    .map(|m| {
                        ds.iter()
                            .filter(|(_, g)| m.matches_with(&mut state, g))
                            .count()
                    })
                    .sum::<usize>()
            })
        },
    );
    group.finish();

    // ---- Axis 4: bounds-only vs fingerprint-sharpened routing.
    let route_ds = routing_dataset();
    let route_queries = routing_queries();
    let route_refs: Vec<&Graph> = route_queries.iter().collect();
    // Scan is the method here on purpose: its per-shard probe cost is the
    // full verification sweep, so the bench measures what a wasted probe of
    // a bounds-admitted decoy shard actually costs when the index cannot
    // refute it cheaply (an indexed method's trie miss would mask the
    // routing win on this adversarial workload).
    let route_config = MethodConfig::fast();
    let mut bounds_svc = ShardedService::new(
        MethodKind::Scan,
        &route_config,
        &route_ds,
        ServiceOptions::new()
            .shards(ROUTE_SHARDS)
            .routing(RoutingMode::Synopsis),
    );
    let mut fp_svc = ShardedService::new(
        MethodKind::Scan,
        &route_config,
        &route_ds,
        ServiceOptions::new()
            .shards(ROUTE_SHARDS)
            .routing(RoutingMode::SynopsisFingerprint),
    );
    let mut fanout_svc = ShardedService::new(
        MethodKind::Scan,
        &route_config,
        &route_ds,
        ServiceOptions::new().shards(ROUTE_SHARDS),
    );
    let (fanout_answers, _) = wave_answers(&mut fanout_svc, &route_refs);
    let (bounds_answers, bounds_probes) = wave_answers(&mut bounds_svc, &route_refs);
    let (fp_answers, fp_probes) = wave_answers(&mut fp_svc, &route_refs);
    assert_eq!(
        fanout_answers, bounds_answers,
        "bounds routing changed a match set"
    );
    assert_eq!(
        fanout_answers, fp_answers,
        "fingerprint routing changed a match set"
    );
    assert!(
        fp_probes < bounds_probes,
        "fingerprints probed {fp_probes} of bounds' {bounds_probes} — decoys not refuted"
    );
    let mut group = c.benchmark_group("hotloop_routing");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("bounds_only", route_ds.len()),
        &route_refs,
        |b, refs| b.iter(|| bounds_svc.run_wave(refs, None).records.len()),
    );
    group.bench_with_input(
        BenchmarkId::new("fingerprint", route_ds.len()),
        &route_refs,
        |b, refs| b.iter(|| fp_svc.run_wave(refs, None).records.len()),
    );
    group.finish();

    // ---- Gallop crossover measurement (the GALLOP_CROSSOVER constant).
    let mut group = c.benchmark_group("gallop_crossover");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let large: Vec<GraphId> = (0..(1usize << 15)).map(|i| i * 2).collect();
    for ratio in [2usize, 4, 8, 10, 12, 16, 32, 64] {
        let small: Vec<GraphId> = large.iter().copied().step_by(ratio).collect();
        assert_eq!(
            intersect_gallop(&small, &large),
            intersect_sorted(&small, &large)
        );
        group.bench_with_input(
            BenchmarkId::new("merge", ratio),
            &(&small, &large),
            |b, (small, large)| b.iter(|| intersect_sorted(small, large)),
        );
        group.bench_with_input(
            BenchmarkId::new("gallop", ratio),
            &(&small, &large),
            |b, (small, large)| b.iter(|| intersect_gallop(small, large)),
        );
    }
    group.finish();

    // ---- Speedup summary straight from the recorded medians.
    let results = c.results();
    let median = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    let pairs = [
        (
            "intersect kernels",
            format!("hotloop_intersect/scalar/{INTERSECT_UNIVERSE}"),
            format!("hotloop_intersect/wide/{INTERSECT_UNIVERSE}"),
        ),
        (
            "posting order",
            format!("hotloop_posting_order/arrival/{POSTING_UNIVERSE}"),
            format!("hotloop_posting_order/rarest_first/{POSTING_UNIVERSE}"),
        ),
        (
            "vf2 order",
            format!("hotloop_vf2_order/placed_neighbors/{}", vf2_ds.len()),
            format!("hotloop_vf2_order/rarity_degree/{}", vf2_ds.len()),
        ),
        (
            "routing",
            format!("hotloop_routing/bounds_only/{}", route_ds.len()),
            format!("hotloop_routing/fingerprint/{}", route_ds.len()),
        ),
    ];
    for (name, before, after) in &pairs {
        if let (Some(before_ns), Some(after_ns)) = (median(before), median(after)) {
            println!(
                "{name:>18}: before {before_ns:>14.1} ns, after {after_ns:>14.1} ns, \
                 speedup {:.2}x",
                before_ns / after_ns
            );
        }
    }
    for ratio in [2usize, 4, 8, 10, 12, 16, 32, 64] {
        if let (Some(m), Some(g)) = (
            median(&format!("gallop_crossover/merge/{ratio}")),
            median(&format!("gallop_crossover/gallop/{ratio}")),
        ) {
            println!(
                "gallop @ ratio {ratio:>3}: merge {m:>12.1} ns, gallop {g:>12.1} ns ({})",
                if g < m { "gallop wins" } else { "merge wins" }
            );
        }
    }
    println!("configured GALLOP_CROSSOVER = {GALLOP_CROSSOVER}");
}

criterion_group!(benches, bench_hotloops);
criterion_main!(benches);
