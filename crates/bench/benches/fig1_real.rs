//! Figure 1: indexing and query processing over the four real-like datasets.
//!
//! Prints all four panels (indexing time, index size, query time, false
//! positive ratio) for AIDS/PDBS/PCM/PPI-like data and benchmarks index
//! construction per method on the AIDS-like dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::bench_scale;
use sqbench_generator::RealDataset;
use sqbench_harness::experiments::fig1_real;
use sqbench_harness::report;
use sqbench_index::{build_index, MethodConfig, MethodKind};

fn bench_fig1(c: &mut Criterion) {
    let scale = bench_scale();

    // Regenerate the Figure 1 series.
    let figure = fig1_real::run(&scale);
    println!("{}", report::render_text(&figure));

    // Criterion micro-benchmark: index construction per method over the
    // AIDS-like dataset (the regime every method can handle).
    let dataset = RealDataset::Aids.generate(scale.real_dataset_scale, scale.seed);
    let config = MethodConfig::default();
    let mut group = c.benchmark_group("fig1_index_build_aids_like");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in MethodKind::ALL {
        group.bench_with_input(BenchmarkId::new("build", kind.name()), &kind, |b, &kind| {
            b.iter(|| build_index(kind, &config, &dataset))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
