//! Micro-benchmark of the candidate-set engine: the seed's sorted-`Vec`
//! pairwise intersection versus the bitset fold that now powers every
//! method's filtering stage, across dataset scales (1k / 10k / 100k graphs).
//!
//! Each scale builds eight posting lists of decreasing density (the shape a
//! multi-feature query produces: the first features are common, later ones
//! rarer) and measures one full filtering fold. A skewed two-list case
//! additionally compares the linear merge against the galloping
//! intersection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_index::candidates::{intersect_posting, CandidateFold};
use sqbench_index::intersect_sorted;

/// Posting lists mimicking a query with `k` features over `universe`
/// graphs: list `i` keeps every `(i + 2)`-nd id with a small offset, so the
/// fold starts dense (~1/2) and ends sparse (~1/9).
fn feature_posting_lists(universe: usize, k: usize) -> Vec<Vec<usize>> {
    (0..k)
        .map(|i| {
            let stride = i + 2;
            (0..universe)
                .filter(|id| id % stride == i % stride)
                .collect()
        })
        .collect()
}

/// The seed's engine: fold the lists with pairwise sorted-`Vec` merges,
/// allocating an intermediate `Vec` per feature.
fn fold_sorted_vec(lists: &[Vec<usize>]) -> Vec<usize> {
    let mut current: Option<Vec<usize>> = None;
    for list in lists {
        current = Some(match current {
            None => list.clone(),
            Some(acc) => intersect_sorted(&acc, list),
        });
    }
    current.unwrap_or_default()
}

/// The new engine: one bitset narrowed in place per feature, materialized
/// once at the end.
fn fold_bitset(universe: usize, lists: &[Vec<usize>]) -> Vec<usize> {
    let mut fold = CandidateFold::new(universe);
    for list in lists {
        if !fold.apply_sorted(list.iter().copied()) {
            break;
        }
    }
    fold.into_sorted_vec()
}

fn bench_candidates(c: &mut Criterion) {
    let scales = [1_000usize, 10_000, 100_000];

    let mut group = c.benchmark_group("micro_candidate_fold");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &universe in &scales {
        let lists = feature_posting_lists(universe, 8);
        // Sanity: both engines agree before we time them.
        assert_eq!(fold_sorted_vec(&lists), fold_bitset(universe, &lists));
        group.bench_with_input(
            BenchmarkId::new("sorted_vec", universe),
            &lists,
            |b, lists| b.iter(|| fold_sorted_vec(lists)),
        );
        group.bench_with_input(BenchmarkId::new("bitset", universe), &lists, |b, lists| {
            b.iter(|| fold_bitset(universe, lists))
        });
    }
    group.finish();

    let mut skewed = c.benchmark_group("micro_skewed_pair");
    skewed.sample_size(20);
    skewed.warm_up_time(std::time::Duration::from_millis(500));
    skewed.measurement_time(std::time::Duration::from_secs(2));
    for &universe in &scales {
        let rare: Vec<usize> = (0..universe).step_by(universe / 64).collect();
        let common: Vec<usize> = (0..universe).step_by(2).collect();
        assert_eq!(
            intersect_posting(&rare, &common),
            intersect_sorted(&rare, &common)
        );
        skewed.bench_with_input(
            BenchmarkId::new("merge", universe),
            &(&rare, &common),
            |b, (rare, common)| b.iter(|| intersect_sorted(rare, common)),
        );
        skewed.bench_with_input(
            BenchmarkId::new("galloping", universe),
            &(&rare, &common),
            |b, (rare, common)| b.iter(|| intersect_posting(rare, common)),
        );
    }
    skewed.finish();

    // Speedup summary straight from the recorded medians, so the BENCH json
    // and stdout both carry the comparison the acceptance criterion asks
    // for ("bitset beats sorted-Vec at the 10k scale").
    let results = c.results();
    for &universe in &scales {
        let median = |name: &str| {
            results
                .iter()
                .find(|r| r.id == format!("micro_candidate_fold/{name}/{universe}"))
                .map(|r| r.median_ns)
        };
        if let (Some(vec_ns), Some(bit_ns)) = (median("sorted_vec"), median("bitset")) {
            println!(
                "candidate fold @ {universe:>6} graphs: sorted_vec {vec_ns:>12.1} ns, \
                 bitset {bit_ns:>12.1} ns, speedup {:.2}x",
                vec_ns / bit_ns
            );
        }
    }
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
