//! Figure 6: scalability with the number of graphs in the dataset.
//!
//! Prints the four panels of the dataset-size sweep and benchmarks index
//! construction at the largest sweep point for every method (the regime
//! where the paper's breaking points appear).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::bench_scale;
use sqbench_generator::{GraphGen, GraphGenConfig};
use sqbench_harness::experiments::fig6_numgraphs;
use sqbench_harness::report;
use sqbench_index::{build_index, MethodConfig, MethodKind};

fn bench_fig6(c: &mut Criterion) {
    let scale = bench_scale();

    let figure = fig6_numgraphs::run(&scale);
    println!("{}", report::render_text(&figure));

    let largest = *fig6_numgraphs::sweep_for(&scale)
        .last()
        .expect("sweep is non-empty");
    let dataset = GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(largest)
            .with_avg_nodes(scale.avg_nodes)
            .with_avg_density(scale.avg_density)
            .with_label_count(scale.label_count)
            .with_seed(scale.seed),
    )
    .generate();
    let config = MethodConfig::default();
    let mut group = c.benchmark_group("fig6_index_build_largest_dataset");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in MethodKind::ALL {
        group.bench_with_input(BenchmarkId::new("build", kind.name()), &kind, |b, &kind| {
            b.iter(|| build_index(kind, &config, &dataset))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
