//! Micro-benchmark of the shared-storage data model: zero-copy dataset
//! partitioning vs. the deep-copying layout it replaced, plus what
//! label-aware placement buys synopsis routing on interleaved ingest.
//!
//! The dataset is 10k graphs in four **label-disjoint families**
//! interleaved `i % 4`, served on **3 shards** — a shard count coprime to
//! the family count, so round-robin placement smears every family across
//! every shard and routing can skip nothing, while
//! [`ShardStrategy::LabelAware`] re-clusters the families and routed
//! queries probe a strict shard subset. Timed modes:
//!
//! * `partition/deep_copy` — partition then deep-clone every graph into
//!   its shard (the pre-refactor `partition_dataset` behaviour, O(bytes));
//! * `partition/zero_copy_rr` / `partition/zero_copy_label_aware` — the
//!   shared-storage partitioner (`Arc::clone` per graph, O(pointers));
//! * `routed_wave/round_robin3` / `routed_wave/label_aware3` — one
//!   synopsis-routed wave under each placement, same queries, same shards.
//!
//! Before timing, the correctness gate asserts the zero-copy contract
//! (`Arc::ptr_eq` per shard graph, incremental partition memory ≤1% of
//! `Dataset::memory_bytes` at 10k graphs — it was ~100%), answer
//! equivalence of both placements against fan-out and the oneshot index,
//! and that label-aware placement probes strictly fewer shards than
//! round-robin. The committed `BENCH_micro_partition.json` baseline feeds
//! the CI bench-regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_generator::{label_clustered, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph, GraphId};
use sqbench_harness::service::{
    partition_dataset, RoutingMode, ServiceOptions, ShardStrategy, ShardedService,
};
use sqbench_index::{build_index, MethodConfig, MethodKind};
use std::sync::Arc;

const UNIVERSE: usize = 10_000;
const BATCH: usize = 24;
const SHARDS: usize = 3;
const FAMILIES: u32 = 4;

fn interleaved_dataset() -> Dataset {
    label_clustered(
        &GraphGenConfig::default()
            .with_graph_count(UNIVERSE)
            .with_avg_nodes(14)
            .with_avg_density(0.18)
            .with_label_count(6)
            .with_seed(0x9a47),
        FAMILIES,
    )
}

/// The pre-refactor partition cost model: assign, then deep-clone every
/// graph into its shard — what `partition_dataset` did before `Dataset`
/// moved to shared `Arc<Graph>` storage.
fn partition_deep_copy(dataset: &Dataset, shards: usize, strategy: ShardStrategy) -> Vec<Dataset> {
    partition_dataset(dataset, shards, strategy)
        .into_iter()
        .map(|part| {
            let graphs: Vec<Graph> = part.dataset.iter().map(|(_, g)| g.clone()).collect();
            Dataset::from_graphs(part.dataset.name().to_string(), graphs)
        })
        .collect()
}

fn gate_wave(service: &mut ShardedService, queries: &[&Graph]) -> (Vec<Vec<GraphId>>, u64) {
    let report = service.run_wave(queries, None);
    let answers = report.records.iter().map(|r| r.answers.clone()).collect();
    (answers, report.shards_probed())
}

fn bench_partition(c: &mut Criterion) {
    let dataset = interleaved_dataset();
    let config = MethodConfig::default();
    let queries: Vec<Graph> = QueryGen::new(0x5_4a7d)
        .generate(&dataset, BATCH, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect();
    let refs: Vec<&Graph> = queries.iter().collect();

    // ---- correctness gate: the zero-copy contract -------------------
    let dataset_bytes = dataset.memory_bytes();
    let mut incremental_bytes = 0usize;
    for strategy in ShardStrategy::ALL {
        let parts = partition_dataset(&dataset, SHARDS, strategy);
        let mut covered = 0usize;
        for part in &parts {
            for (local, &global) in part.to_global.iter().enumerate() {
                covered += 1;
                assert!(
                    Arc::ptr_eq(
                        part.dataset.shared_unchecked(local),
                        dataset.shared_unchecked(global)
                    ),
                    "{}: shard graph deep-copied",
                    strategy.name()
                );
            }
        }
        assert_eq!(covered, dataset.len());
        let incremental: usize = parts.iter().map(|p| p.dataset.owned_memory_bytes()).sum();
        assert!(
            incremental * 100 <= dataset_bytes,
            "{}: partition added {incremental} of {dataset_bytes} bytes (> 1%)",
            strategy.name()
        );
        incremental_bytes = incremental;
    }
    let deep_bytes: usize = partition_deep_copy(&dataset, SHARDS, ShardStrategy::RoundRobin)
        .iter()
        .map(Dataset::memory_bytes)
        .sum();

    // ---- correctness gate: placement is invisible in match sets -----
    let index = build_index(MethodKind::Ggsx, &config, &dataset);
    let oneshot: Vec<Vec<GraphId>> = refs
        .iter()
        .map(|q| index.query(&dataset, q).answers)
        .collect();
    let mut fanout_rr = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &dataset,
        ServiceOptions::new().shards(SHARDS),
    );
    let mut routed_rr = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &dataset,
        ServiceOptions::new()
            .shards(SHARDS)
            .routing(RoutingMode::Synopsis),
    );
    let mut routed_la = ShardedService::new(
        MethodKind::Ggsx,
        &config,
        &dataset,
        ServiceOptions::new()
            .shards(SHARDS)
            .strategy(ShardStrategy::LabelAware)
            .routing(RoutingMode::Synopsis),
    );
    let (fanout_answers, fanout_probes) = gate_wave(&mut fanout_rr, &refs);
    let (rr_answers, rr_probes) = gate_wave(&mut routed_rr, &refs);
    let (la_answers, la_probes) = gate_wave(&mut routed_la, &refs);
    assert_eq!(oneshot, fanout_answers, "fan-out diverged from oneshot");
    assert_eq!(oneshot, rr_answers, "round-robin routing changed answers");
    assert_eq!(oneshot, la_answers, "label-aware placement changed answers");
    assert_eq!(fanout_probes, (SHARDS * BATCH) as u64);
    assert!(
        la_probes < rr_probes,
        "label-aware probed {la_probes} of round-robin's {rr_probes} — \
         clustering bought nothing on interleaved ingest"
    );

    // ---- timed sections ---------------------------------------------
    let mut group = c.benchmark_group("micro_partition");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("partition_deep_copy", UNIVERSE),
        &dataset,
        |b, ds| {
            b.iter(|| {
                partition_deep_copy(ds, SHARDS, ShardStrategy::RoundRobin)
                    .iter()
                    .map(Dataset::len)
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("partition_zero_copy_rr", UNIVERSE),
        &dataset,
        |b, ds| {
            b.iter(|| {
                partition_dataset(ds, SHARDS, ShardStrategy::RoundRobin)
                    .iter()
                    .map(|p| p.dataset.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("partition_zero_copy_label_aware", UNIVERSE),
        &dataset,
        |b, ds| {
            b.iter(|| {
                partition_dataset(ds, SHARDS, ShardStrategy::LabelAware)
                    .iter()
                    .map(|p| p.dataset.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("routed_wave_round_robin3", UNIVERSE),
        &refs,
        |b, refs| {
            b.iter(|| {
                routed_rr
                    .run_wave(refs, None)
                    .records
                    .iter()
                    .map(|r| r.answer_count())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("routed_wave_label_aware3", UNIVERSE),
        &refs,
        |b, refs| {
            b.iter(|| {
                routed_la
                    .run_wave(refs, None)
                    .records
                    .iter()
                    .map(|r| r.answer_count())
                    .sum::<usize>()
            })
        },
    );
    group.finish();

    // Summary straight from the recorded medians.
    let results = c.results();
    let median = |name: &str| {
        results
            .iter()
            .find(|r| r.id == format!("micro_partition/{name}/{UNIVERSE}"))
            .map(|r| r.median_ns)
    };
    if let (Some(deep), Some(arc_rr), Some(arc_la)) = (
        median("partition_deep_copy"),
        median("partition_zero_copy_rr"),
        median("partition_zero_copy_label_aware"),
    ) {
        println!(
            "partition @ {UNIVERSE} graphs / {SHARDS} shards: deep copy {:.2} ms, \
             zero-copy rr {:.3} ms ({:.1}x), zero-copy label-aware {:.3} ms ({:.1}x); \
             incremental bytes {} vs deep {} ({:.2}% of the {}-byte dataset)",
            deep / 1e6,
            arc_rr / 1e6,
            deep / arc_rr,
            arc_la / 1e6,
            deep / arc_la,
            incremental_bytes,
            deep_bytes,
            100.0 * incremental_bytes as f64 / dataset_bytes as f64,
            dataset_bytes,
        );
    }
    if let (Some(rr), Some(la)) = (
        median("routed_wave_round_robin3"),
        median("routed_wave_label_aware3"),
    ) {
        println!(
            "routing under placement @ {BATCH}-query wave: round-robin {:.2} ms \
             (probes {rr_probes}), label-aware {:.2} ms (probes {la_probes}, {:.2}x)",
            rr / 1e6,
            la / 1e6,
            rr / la,
        );
    }
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
