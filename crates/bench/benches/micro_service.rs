//! Throughput micro-benchmark of the batch query service over a 10k-graph
//! synthetic dataset.
//!
//! Three execution modes serve the same workload against the same GGSX
//! index:
//!
//! * `oneshot`  — the pre-service loop: one `index.query()` per query,
//!   fresh candidate allocations each time;
//! * `workers1` — the service's single-worker pipeline (arena reuse, no
//!   per-query candidate `Vec`);
//! * `workers4` — the pipelined 4-worker pool (filter of one query
//!   overlapping verification of another, work stealing between workers).
//!
//! Before timing, the bench asserts all three modes return identical
//! per-query results. The speedup summary printed at the end (and recorded
//! in `BENCH_micro_service.json`) is what the CI bench-regression job
//! compares run over run; the 4-worker row only shows its ≥1.5× gain on a
//! machine with cores to spare — on a single-core runner it degrades
//! gracefully to roughly the single-worker rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph};
use sqbench_harness::service::{QueryService, ServiceOptions};
use sqbench_index::{build_index, GraphIndex, MethodConfig, MethodKind};

const UNIVERSE: usize = 10_000;
const BATCH: usize = 24;

fn service_dataset() -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(UNIVERSE)
            .with_avg_nodes(10)
            .with_avg_density(0.2)
            .with_label_count(6)
            .with_seed(20150831),
    )
    .generate()
}

fn service_queries(dataset: &Dataset) -> Vec<Graph> {
    QueryGen::new(0x5e7_1ce)
        .generate(dataset, BATCH, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect()
}

/// The pre-service execution: one one-shot query at a time.
fn run_oneshot(index: &dyn GraphIndex, dataset: &Dataset, queries: &[&Graph]) -> Vec<usize> {
    queries
        .iter()
        .map(|q| index.query(dataset, q).answers.len())
        .collect()
}

/// One service batch; returns per-query answer counts.
fn run_service(service: &mut QueryService<'_>, queries: &[&Graph]) -> Vec<usize> {
    service
        .run_batch(queries, None)
        .records
        .iter()
        .map(|r| r.as_ref().expect("no deadline set").answer_count())
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let dataset = service_dataset();
    let index = build_index(MethodKind::Ggsx, &MethodConfig::default(), &dataset);
    let queries = service_queries(&dataset);
    let refs: Vec<&Graph> = queries.iter().collect();

    // Correctness gate before any timing: all three modes must return the
    // same per-query match counts ("matches the serial runner exactly").
    let oneshot_counts = run_oneshot(&*index, &dataset, &refs);
    let mut serial_service = QueryService::new(&*index, &dataset, ServiceOptions::new().workers(1));
    let mut pooled_service = QueryService::new(&*index, &dataset, ServiceOptions::new().workers(4));
    assert_eq!(oneshot_counts, run_service(&mut serial_service, &refs));
    assert_eq!(oneshot_counts, run_service(&mut pooled_service, &refs));

    let mut group = c.benchmark_group("micro_service_batch");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_with_input(BenchmarkId::new("oneshot", UNIVERSE), &refs, |b, refs| {
        b.iter(|| run_oneshot(&*index, &dataset, refs))
    });
    group.bench_with_input(BenchmarkId::new("workers1", UNIVERSE), &refs, |b, refs| {
        b.iter(|| run_service(&mut serial_service, refs))
    });
    group.bench_with_input(BenchmarkId::new("workers4", UNIVERSE), &refs, |b, refs| {
        b.iter(|| run_service(&mut pooled_service, refs))
    });
    group.finish();

    // Throughput summary straight from the recorded medians: queries/sec
    // per mode plus the speedups the acceptance criteria track.
    let results = c.results();
    let median = |name: &str| {
        results
            .iter()
            .find(|r| r.id == format!("micro_service_batch/{name}/{UNIVERSE}"))
            .map(|r| r.median_ns)
    };
    if let (Some(oneshot), Some(w1), Some(w4)) =
        (median("oneshot"), median("workers1"), median("workers4"))
    {
        let qps = |ns: f64| BATCH as f64 / (ns / 1e9);
        println!(
            "service throughput @ {UNIVERSE} graphs / {BATCH}-query batch: \
             oneshot {:.1} q/s, workers1 {:.1} q/s, workers4 {:.1} q/s \
             (workers4 vs oneshot {:.2}x, vs workers1 {:.2}x; cores: {})",
            qps(oneshot),
            qps(w1),
            qps(w4),
            oneshot / w4,
            w1 / w4,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
    }
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
