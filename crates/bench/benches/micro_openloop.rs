//! Open-loop saturation micro-benchmark of the sharded service.
//!
//! Unlike the closed-loop waves in `micro_sharded`, offered load here does
//! not adapt to service capacity: a seeded Poisson schedule submits
//! Zipf-popular pool queries through the cost-aware admission door
//! (`submit_or_shed`) at a target QPS while a consumer thread drains waves
//! concurrently. The bench first calibrates the service's closed-loop
//! capacity, then replays the same schedule shape at 1x, 2x and 4x of it:
//!
//! * `sat1x` — offered ≈ capacity: the queue stays shallow, sheds are
//!   rare, tail latency sits near the service time;
//! * `sat2x` — moderate saturation: backlog builds, the measured cost
//!   model starts shedding infeasible deadlines;
//! * `sat4x` — heavy saturation: most of the protection comes from the
//!   admission door, and the latency tail of *admitted* queries stays
//!   bounded by the deadline budget.
//!
//! Before timing, the bench replays each saturation level once and
//! asserts the open-loop accounting invariants: every offered arrival is
//! admitted, shed or refused — and every admitted ticket comes back in
//! exactly one drained record (no lost queries). The timed quantity is
//! one full replay (schedule span plus drain tail), so the committed
//! `BENCH_micro_openloop.json` baseline gates regressions in the
//! admission door, the wave merge and the drain loop together.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_generator::{GraphGen, GraphGenConfig, QueryGen};
use sqbench_graph::{Dataset, Graph};
use sqbench_harness::loadgen::{run_open_loop, ArrivalProcess, LoadGenConfig};
use sqbench_harness::metrics::StageTotals;
use sqbench_harness::service::{
    AdmissionQueue, QueryOutcome, ServiceOptions, ShardedService, Ticket,
};
use sqbench_index::{MethodConfig, MethodKind};
use std::time::Duration;

const UNIVERSE: usize = 3_000;
const POOL: usize = 16;
const QUERIES: usize = 64;
const SHARDS: usize = 2;
/// Bounded queue depth: small enough to fill under saturation, so the
/// admission door's cost-model shedding actually engages (a queue sized
/// for the whole schedule would never shed — only time out).
const QUEUE_DEPTH: usize = 8;

fn openloop_dataset() -> Dataset {
    GraphGen::new(
        GraphGenConfig::default()
            .with_graph_count(UNIVERSE)
            .with_avg_nodes(10)
            .with_avg_density(0.2)
            .with_label_count(6)
            .with_seed(20150831),
    )
    .generate()
}

fn query_pool(dataset: &Dataset) -> Vec<Graph> {
    QueryGen::new(0x0be5_7e11)
        .generate(dataset, POOL, 4)
        .iter()
        .map(|(q, _)| q.clone())
        .collect()
}

/// What one open-loop replay offered, admitted and completed.
struct ReplayStats {
    offered: usize,
    admitted: Vec<Ticket>,
    shed: usize,
    refused: usize,
    record_tickets: Vec<Ticket>,
    complete: usize,
    degraded: usize,
    expired: usize,
    totals: StageTotals,
}

/// Replays one open-loop schedule at `qps` against `service`: a producer
/// thread paces `submit_or_shed` calls while this thread drains waves
/// until the schedule is exhausted and the queue is empty.
fn replay(
    service: &mut ShardedService,
    pool: &[Graph],
    qps: f64,
    deadline: Duration,
    seed_cost: Duration,
) -> ReplayStats {
    let queue = AdmissionQueue::new(ServiceOptions::new().queue_capacity(QUEUE_DEPTH));
    // Warm the cost model with the calibrated per-query cost so the door
    // makes measured-cost decisions from the first arrival; subsequent
    // drains keep refining the estimate from observed stage times.
    queue.cost_model().seed(seed_cost);
    let config = LoadGenConfig::new(ArrivalProcess::Poisson { qps }, QUERIES)
        .seed(0x510a_d6e2)
        .deadline(deadline);
    let (open, records, totals) = std::thread::scope(|scope| {
        let producer = scope.spawn(|| run_open_loop(&queue, pool, &config));
        let mut records = Vec::new();
        let mut totals = StageTotals::default();
        loop {
            let wave = service.drain(&queue, None);
            let idle = wave.records.is_empty();
            totals.merge(&wave.totals);
            records.extend(wave.records);
            if producer.is_finished() && queue.is_empty() {
                break;
            }
            if idle {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let open = producer.join().expect("producer thread");
        (open, records, totals)
    });
    let mut record_tickets: Vec<Ticket> = records.iter().map(|r| r.ticket).collect();
    record_tickets.sort_unstable();
    ReplayStats {
        offered: open.offered,
        shed: open.shed,
        refused: open.refused,
        admitted: open.admitted,
        record_tickets,
        complete: records
            .iter()
            .filter(|r| r.outcome == QueryOutcome::Complete)
            .count(),
        degraded: records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::Degraded { .. }))
            .count(),
        expired: records.iter().filter(|r| r.expired()).count(),
        totals,
    }
}

fn bench_openloop(c: &mut Criterion) {
    let dataset = openloop_dataset();
    let pool = query_pool(&dataset);
    let refs: Vec<&Graph> = pool.iter().collect();
    let mut service = ShardedService::new(
        MethodKind::Ggsx,
        &MethodConfig::default(),
        &dataset,
        ServiceOptions::new()
            .shards(SHARDS)
            .workers(1)
            .workers_max(2),
    );

    // Calibrate closed-loop capacity: how fast the service drains the
    // pool when offered load adapts to it. The saturation multipliers
    // are relative to this, so the bench stresses the same *regimes* on
    // any hardware class.
    let calibration = std::time::Instant::now();
    let mut calibrated_queries = 0usize;
    for _ in 0..3 {
        calibrated_queries += service.run_wave(&refs, None).records.len();
    }
    let per_query_s = calibration.elapsed().as_secs_f64() / calibrated_queries as f64;
    let capacity_qps = 1.0 / per_query_s.max(1e-6);
    let seed_cost = Duration::from_secs_f64(per_query_s);
    // Generous enough for healthy queueing at 1x, tight enough that the
    // cost model must shed under real saturation.
    let deadline = Duration::from_secs_f64((per_query_s * 16.0).max(0.002));

    // Accounting gate before any timing: offered = admitted + shed +
    // refused, and the consumer's records join 1:1 with admitted tickets
    // (no lost queries, no duplicates) at every saturation level.
    for mult in [1.0, 2.0, 4.0] {
        let stats = replay(
            &mut service,
            &pool,
            capacity_qps * mult,
            deadline,
            seed_cost,
        );
        assert_eq!(
            stats.offered,
            stats.admitted.len() + stats.shed + stats.refused,
            "open-loop accounting must cover every arrival at {mult}x"
        );
        assert_eq!(
            stats.record_tickets, stats.admitted,
            "every admitted ticket must drain into exactly one record at {mult}x"
        );
    }

    let mut group = c.benchmark_group("micro_openloop");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(4));
    for (name, mult) in [("sat1x", 1.0), ("sat2x", 2.0), ("sat4x", 4.0)] {
        group.bench_with_input(BenchmarkId::new(name, QUERIES), &mult, |b, &mult| {
            b.iter(|| {
                replay(
                    &mut service,
                    &pool,
                    capacity_qps * mult,
                    deadline,
                    seed_cost,
                )
                .record_tickets
                .len()
            })
        });
    }
    group.finish();

    // Shed/degrade/latency summary from one fresh replay per level — the
    // saturation story the timed medians alone cannot tell.
    for (name, mult) in [("sat1x", 1.0), ("sat2x", 2.0), ("sat4x", 4.0)] {
        let stats = replay(
            &mut service,
            &pool,
            capacity_qps * mult,
            deadline,
            seed_cost,
        );
        println!(
            "openloop {name}: offered {} @ {:.0} q/s, admitted {}, shed {} ({:.0}%), \
             complete {}, degraded {}, expired {}, p50 {:.2} ms, p99 {:.2} ms",
            stats.offered,
            capacity_qps * mult,
            stats.admitted.len(),
            stats.shed,
            100.0 * stats.shed as f64 / stats.offered.max(1) as f64,
            stats.complete,
            stats.degraded,
            stats.expired,
            stats.totals.latency_percentile(0.50) * 1e3,
            stats.totals.latency_percentile(0.99) * 1e3,
        );
    }
    let results = c.results();
    let median = |name: &str| {
        results
            .iter()
            .find(|r| r.id == format!("micro_openloop/{name}/{QUERIES}"))
            .map(|r| r.median_ns)
    };
    if let (Some(s1), Some(s2), Some(s4)) = (median("sat1x"), median("sat2x"), median("sat4x")) {
        println!(
            "openloop replay wall: sat1x {:.1} ms, sat2x {:.1} ms, sat4x {:.1} ms \
             (capacity {:.0} q/s, deadline {:.2} ms, cores: {})",
            s1 / 1e6,
            s2 / 1e6,
            s4 / 1e6,
            capacity_qps,
            deadline.as_secs_f64() * 1e3,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
    }
}

criterion_group!(benches, bench_openloop);
criterion_main!(benches);
