//! Micro-benchmarks of the substrates every method is built from: path /
//! tree / cycle enumeration, canonical labels, fingerprints, and the VF2
//! and tuned subgraph-isomorphism matchers.

use criterion::{criterion_group, criterion_main, Criterion};
use sqbench_bench::default_dataset;
use sqbench_generator::QueryGen;

fn bench_components(c: &mut Criterion) {
    let dataset = default_dataset();
    let graph = dataset.graph_unchecked(0).clone();
    let workload = QueryGen::new(9).generate(&dataset, 1, 8);
    let (query, source) = workload.iter().next().unwrap();
    let target = dataset.graph_unchecked(source).clone();
    let query = query.clone();

    let mut group = c.benchmark_group("micro_feature_extraction");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("enumerate_paths_len4", |b| {
        b.iter(|| sqbench_features::paths::enumerate_paths(&graph, 4))
    });
    group.bench_function("enumerate_trees_len4", |b| {
        b.iter(|| sqbench_features::trees::enumerate_trees(&graph, 4))
    });
    group.bench_function("enumerate_cycles_len4", |b| {
        b.iter(|| sqbench_features::cycles::enumerate_cycles(&graph, 4))
    });
    group.bench_function("enumerate_subgraphs_len3", |b| {
        b.iter(|| sqbench_features::subgraphs::enumerate_connected_subgraphs(&graph, 3))
    });
    group.finish();

    let mut canon = c.benchmark_group("micro_canonical_labels");
    canon.sample_size(20);
    canon.warm_up_time(std::time::Duration::from_secs(1));
    canon.measurement_time(std::time::Duration::from_secs(2));
    canon.bench_function("graph_key_8_edge_query", |b| {
        b.iter(|| sqbench_features::canonical::graph_key(&query))
    });
    canon.finish();

    let mut fp = c.benchmark_group("micro_fingerprint");
    fp.sample_size(20);
    fp.warm_up_time(std::time::Duration::from_secs(1));
    fp.measurement_time(std::time::Duration::from_secs(2));
    fp.bench_function("build_4096bit_fingerprint", |b| {
        b.iter(|| {
            let mut f = sqbench_features::Fingerprint::new(4096);
            for (key, _) in sqbench_features::trees::enumerate_trees(&graph, 4) {
                f.insert_key(&key, 1);
            }
            f
        })
    });
    fp.finish();

    let mut iso = c.benchmark_group("micro_subgraph_isomorphism");
    iso.sample_size(20);
    iso.warm_up_time(std::time::Duration::from_secs(1));
    iso.measurement_time(std::time::Duration::from_secs(2));
    iso.bench_function("vf2_first_match", |b| {
        b.iter(|| sqbench_iso::has_subgraph_embedding(&query, &target))
    });
    iso.bench_function("tuned_first_match", |b| {
        b.iter(|| sqbench_iso::TunedMatcher::matches(&query, &target))
    });
    iso.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
