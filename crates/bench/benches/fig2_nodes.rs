//! Figure 2: scalability with the number of nodes per graph.
//!
//! Prints the four panels of the node-count sweep and benchmarks query
//! processing per method on the sweep's default ("sane defaults") point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::{bench_scale, default_dataset, default_workloads};
use sqbench_harness::experiments::fig2_nodes;
use sqbench_harness::report;
use sqbench_index::{build_index, MethodConfig, MethodKind};

fn bench_fig2(c: &mut Criterion) {
    let scale = bench_scale();

    // Regenerate the Figure 2 series.
    let figure = fig2_nodes::run(&scale);
    println!("{}", report::render_text(&figure));

    // Criterion micro-benchmark: query processing per method at the default
    // point (the candidate-set/verification cost the paper's panel (c) plots).
    let dataset = default_dataset();
    let workloads = default_workloads(&dataset);
    let queries: Vec<_> = workloads
        .iter()
        .flat_map(|w| w.queries.iter().cloned())
        .collect();
    let config = MethodConfig::default();
    let mut group = c.benchmark_group("fig2_query_processing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in MethodKind::ALL {
        let index = build_index(kind, &config, &dataset);
        group.bench_with_input(BenchmarkId::new("query", kind.name()), &kind, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(index.query(&dataset, q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
