//! Ablation: the two design choices DESIGN.md singles out for Grapes.
//!
//! 1. **Location information** — Grapes and GraphGrepSX share the same path
//!    enumeration and the same count-based pruning rule; the only filtering
//!    difference is Grapes' per-path start-vertex lists and the
//!    component-restricted verification they enable. Benchmarking the two
//!    side by side isolates that choice (the space cost shows up in the
//!    printed index sizes, the time benefit in the query benchmark).
//! 2. **Parallel index construction** — Grapes' build with 1 worker thread
//!    vs. the paper's 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::{default_dataset, default_workloads};
use sqbench_index::ggsx::GgsxIndex;
use sqbench_index::grapes::GrapesIndex;
use sqbench_index::{GgsxConfig, GrapesConfig, GraphIndex};

fn bench_location_info(c: &mut Criterion) {
    let dataset = default_dataset();
    let workloads = default_workloads(&dataset);
    let queries: Vec<_> = workloads
        .iter()
        .flat_map(|w| w.queries.iter().cloned())
        .collect();

    let grapes = GrapesIndex::build(&dataset, GrapesConfig::default());
    let ggsx = GgsxIndex::build(&dataset, GgsxConfig::default());
    println!(
        "index size: Grapes {:.3} MB (location info) vs GGSX {:.3} MB (counts only)",
        grapes.stats().size_bytes as f64 / (1024.0 * 1024.0),
        ggsx.stats().size_bytes as f64 / (1024.0 * 1024.0)
    );

    let mut group = c.benchmark_group("ablation_location_info_query");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("grapes_with_locations", |b| {
        b.iter(|| {
            for q in &queries {
                criterion::black_box(grapes.query(&dataset, q));
            }
        })
    });
    group.bench_function("ggsx_counts_only", |b| {
        b.iter(|| {
            for q in &queries {
                criterion::black_box(ggsx.query(&dataset, q));
            }
        })
    });
    group.finish();

    let mut build_group = c.benchmark_group("ablation_grapes_parallel_build");
    build_group.sample_size(10);
    build_group.warm_up_time(std::time::Duration::from_secs(1));
    build_group.measurement_time(std::time::Duration::from_secs(2));
    for threads in [1usize, 2, 6] {
        build_group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    GrapesIndex::build(
                        &dataset,
                        GrapesConfig {
                            max_path_edges: 4,
                            threads,
                        },
                    )
                })
            },
        );
    }
    build_group.finish();
}

criterion_group!(benches, bench_location_info);
criterion_main!(benches);
