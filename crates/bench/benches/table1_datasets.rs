//! Table 1: dataset characteristics of the four (simulated) real datasets.
//!
//! Prints the published-vs-measured Table 1 rows and benchmarks dataset
//! generation plus statistics computation per dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqbench_bench::bench_scale;
use sqbench_generator::RealDataset;
use sqbench_graph::DatasetStats;
use sqbench_harness::experiments::table1;

fn bench_table1(c: &mut Criterion) {
    let scale = bench_scale();

    // Regenerate the paper's Table 1 (published vs. measured).
    let report = table1::run(&scale);
    println!("{}", report.render_text());

    let mut group = c.benchmark_group("table1_dataset_stats");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in RealDataset::ALL {
        let dataset = kind.generate(scale.real_dataset_scale, scale.seed);
        group.bench_with_input(BenchmarkId::new("stats", kind.name()), &dataset, |b, ds| {
            b.iter(|| DatasetStats::of(ds))
        });
        group.bench_function(BenchmarkId::new("generate", kind.name()), |b| {
            b.iter(|| kind.generate(scale.real_dataset_scale, scale.seed))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
