//! # sqbench-iso
//!
//! Subgraph isomorphism testing — the *verification* stage shared by every
//! filter-and-verify method in the VLDB 2015 paper.
//!
//! Two matchers are provided:
//!
//! * [`vf2`] — a VF2-style backtracking matcher (Cordella et al., TPAMI
//!   2004), the verifier used by Grapes, GraphGrepSX, gIndex, Tree+Δ and
//!   gCode in the paper. It searches for an injective mapping from query
//!   vertices to target vertices that preserves labels and query edges
//!   (non-induced subgraph isomorphism, Definition 3 of the paper), and by
//!   default stops at the first match — the paper explicitly patched Grapes
//!   to do the same so all systems were compared under first-match
//!   semantics.
//! * [`tuned`] — the CT-Index-style verifier: the same search augmented
//!   with global ordering heuristics (rarest-label-first, high-degree-first)
//!   and a neighborhood-degree look-ahead, which is what lets CT-Index trade
//!   filtering power for verification speed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod tuned;
pub mod vf2;

pub use tuned::TunedMatcher;
pub use vf2::{
    count_embeddings, find_first_embedding, has_subgraph_embedding, MatchState, MatchStats,
    OrderPolicy, Vf2Matcher,
};
