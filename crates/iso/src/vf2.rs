//! VF2-style subgraph isomorphism matcher.
//!
//! The matcher searches for an injective mapping `m` from the vertices of a
//! *query* graph to the vertices of a *target* graph such that labels are
//! preserved and every query edge maps to a target edge (the target may have
//! additional edges — non-induced subgraph isomorphism, as in Definition 3
//! of the paper).
//!
//! The search follows the VF2 recipe: query vertices are matched one at a
//! time in a connectivity-aware order, candidate target vertices are
//! restricted to those with a compatible label, sufficient degree and
//! consistent adjacency to the partial mapping, and a one-step look-ahead on
//! unmatched-neighbor counts prunes hopeless branches early.
//!
//! ## Allocation discipline
//!
//! Verification is the inner loop of every filter-and-verify method: one
//! query is tested against *every* candidate graph. The matcher is therefore
//! built once per query ([`Vf2Matcher::new`] borrows the query — no clone)
//! and all per-target scratch lives in a caller-owned [`MatchState`] that is
//! reused across candidates: after warm-up, testing another candidate
//! allocates nothing. The search itself walks target adjacency slices
//! directly instead of materializing per-depth candidate vectors.

use sqbench_graph::{Graph, Label, VertexId};
use std::collections::HashMap;

/// Statistics of one matching run, useful for harness instrumentation and
/// for tests that assert pruning actually happens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of recursive states expanded.
    pub states_visited: usize,
    /// Number of embeddings found (bounded by the configured limit).
    pub embeddings_found: usize,
}

/// Reusable per-target scratch buffers of the VF2 search: the partial
/// mapping and the used-vertex flags. Create one per worker (or per query)
/// and pass it to [`Vf2Matcher::matches_with`] for every candidate; the
/// buffers grow to the largest target seen and are never reallocated after.
///
/// The search maintains the invariant that both buffers are fully reset
/// (all unmapped / unused) whenever a search returns, so preparing the state
/// for the next target is a pair of `resize` calls — no `O(n)` clearing.
#[derive(Debug, Clone, Default)]
pub struct MatchState {
    /// Partial mapping query vertex -> target vertex (usize::MAX = unmapped).
    q_to_t: Vec<usize>,
    /// Target vertices already used by the mapping.
    t_used: Vec<bool>,
}

impl MatchState {
    /// Creates an empty scratch state.
    pub fn new() -> Self {
        MatchState::default()
    }

    /// Sizes the buffers for a (query, target) pair. Relies on the
    /// clean-on-return invariant: surviving prefixes are already reset, so
    /// `resize` (which grows with clean fill values and shrinks exactly)
    /// is all that is needed — no `O(n)` clearing.
    fn prepare(&mut self, qn: usize, tn: usize) {
        debug_assert!(self.q_to_t.iter().all(|&m| m == usize::MAX), "dirty q_to_t");
        debug_assert!(self.t_used.iter().all(|&u| !u), "dirty t_used");
        self.q_to_t.resize(qn, usize::MAX);
        self.t_used.resize(tn, false);
    }
}

/// Which static matching order a [`Vf2Matcher`] pre-computes — the A/B axis
/// of the ordered-VF2 microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// The tuned matcher's recipe made query-only: prefix-connected first,
    /// then rarest query label, then descending degree. The default — all
    /// methods' generic verification cuts backtracking with it.
    #[default]
    RarityDegree,
    /// The legacy greedy order (most placed neighbors, then degree). Kept
    /// for the kernel A/B bench and the order-equivalence proptests.
    PlacedNeighbors,
}

/// A reusable VF2 matcher bound to a query graph. Borrows the query and
/// pre-computes the matching order of its vertices once, so repeated
/// verification of the same query against many candidate graphs (the common
/// case in filter-and-verify) avoids redundant work.
#[derive(Debug, Clone)]
pub struct Vf2Matcher<'q> {
    query: &'q Graph,
    /// Order in which query vertices are matched.
    order: Vec<VertexId>,
}

impl<'q> Vf2Matcher<'q> {
    /// Builds a matcher for the given query graph (borrow, no clone), using
    /// the default rarity/degree order.
    pub fn new(query: &'q Graph) -> Self {
        Self::with_order(query, OrderPolicy::default())
    }

    /// Builds a matcher with an explicit order policy. Any valid total
    /// order over the query vertices yields the same match verdicts and
    /// embedding sets — the policy only changes how much backtracking the
    /// search does to reach them.
    pub fn with_order(query: &'q Graph, policy: OrderPolicy) -> Self {
        let order = match policy {
            OrderPolicy::RarityDegree => rarity_degree_order(query),
            OrderPolicy::PlacedNeighbors => matching_order(query),
        };
        Vf2Matcher { query, order }
    }

    /// The query graph this matcher was built for.
    pub fn query(&self) -> &Graph {
        self.query
    }

    /// `true` iff the query is subgraph-isomorphic to `target`.
    ///
    /// Convenience wrapper that allocates a fresh [`MatchState`]; loops over
    /// many targets should hold one state and call
    /// [`Vf2Matcher::matches_with`] instead.
    pub fn matches(&self, target: &Graph) -> bool {
        self.matches_with(&mut MatchState::new(), target)
    }

    /// `true` iff the query is subgraph-isomorphic to `target`, reusing the
    /// caller's scratch buffers (the zero-allocation verification path).
    pub fn matches_with(&self, state: &mut MatchState, target: &Graph) -> bool {
        let mut stats = MatchStats::default();
        let mut results = Vec::new();
        self.run(
            state,
            target,
            1,
            CollectMode::Exists,
            &mut results,
            &mut stats,
        ) > 0
    }

    /// Returns the first embedding found, as a vector mapping each query
    /// vertex id to a target vertex id, or `None` if the query is not
    /// contained in the target. An empty query embeds trivially.
    pub fn find_first(&self, target: &Graph) -> Option<Vec<VertexId>> {
        let mut stats = MatchStats::default();
        self.find_with_limit(target, 1, &mut stats).pop()
    }

    /// Counts embeddings up to `limit` (use a small limit: the number of
    /// embeddings can be exponential).
    pub fn count(&self, target: &Graph, limit: usize) -> usize {
        let mut stats = MatchStats::default();
        self.find_with_limit(target, limit, &mut stats).len()
    }

    /// Finds up to `limit` embeddings, recording search statistics.
    pub fn find_with_limit(
        &self,
        target: &Graph,
        limit: usize,
        stats: &mut MatchStats,
    ) -> Vec<Vec<VertexId>> {
        self.find_with_limit_in(&mut MatchState::new(), target, limit, stats)
    }

    /// Finds up to `limit` embeddings using the caller's scratch state.
    pub fn find_with_limit_in(
        &self,
        state: &mut MatchState,
        target: &Graph,
        limit: usize,
        stats: &mut MatchStats,
    ) -> Vec<Vec<VertexId>> {
        let mut results = Vec::new();
        self.run(
            state,
            target,
            limit,
            CollectMode::Embeddings,
            &mut results,
            stats,
        );
        results
    }

    /// Shared search driver. Returns the number of embeddings found by
    /// *this* run — `stats` accumulates across calls when the caller reuses
    /// it, so the limit must not be compared against the cumulative count.
    fn run(
        &self,
        state: &mut MatchState,
        target: &Graph,
        limit: usize,
        mode: CollectMode,
        results: &mut Vec<Vec<VertexId>>,
        stats: &mut MatchStats,
    ) -> usize {
        let qn = self.query.vertex_count();
        let tn = target.vertex_count();
        if limit == 0 {
            return 0;
        }
        if qn == 0 {
            // The empty query is contained in every graph. Stats accumulate
            // across runs like every other path.
            if mode == CollectMode::Embeddings {
                results.push(Vec::new());
            }
            stats.embeddings_found += 1;
            return 1;
        }
        if qn > tn || self.query.edge_count() > target.edge_count() {
            return 0;
        }
        state.prepare(qn, tn);
        let mut search = Search {
            query: self.query,
            target,
            order: &self.order,
            state,
            limit,
            found: 0,
            mode,
            results,
            stats,
        };
        search.search(0);
        search.found
    }
}

/// What the search should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollectMode {
    /// Only existence is needed — found embeddings are counted, not cloned.
    Exists,
    /// Each found embedding is cloned into the result vector.
    Embeddings,
}

/// Connectivity-aware matching order: start with the vertex of highest
/// degree, then repeatedly pick the unordered vertex with the most already-
/// ordered neighbors (ties broken by degree, then by smallest id).
/// Disconnected queries fall back to the highest-degree remaining vertex
/// when no vertex touches the ordered set.
///
/// Placed-neighbor counts are maintained incrementally (the seed
/// implementation re-counted neighbors per candidate per round), and the
/// only allocations are the returned order and one scratch counter vector.
/// The tuned matcher's ordering recipe ([`crate::tuned`]) restated without
/// the target: prefer vertices adjacent to the ordered prefix; among those,
/// pick the one whose label is rarest *within the query* (the query-only
/// stand-in for target-label rarity — a label that occurs once in the query
/// pins the search to few target candidates just as a target-rare label
/// does), breaking ties by descending degree, then smallest id. Being
/// target-independent, the order is computed once per query and reused
/// across every candidate graph.
fn rarity_degree_order(query: &Graph) -> Vec<VertexId> {
    let n = query.vertex_count();
    let mut label_freq: HashMap<Label, usize> = HashMap::new();
    for v in 0..n {
        *label_freq.entry(query.label(v)).or_insert(0) += 1;
    }
    let rarity = |v: VertexId| label_freq.get(&query.label(v)).copied().unwrap_or(0);
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Greedy key, greater wins: most placed neighbors first (each placed
    // neighbor is one adjacency constraint pruning the candidate targets —
    // keeping this primary is what the legacy order got right), then the
    // highest degree, then the rarest query label. Rarity ahead of degree
    // was measured slower on uniform-label targets (query-side rarity is a
    // weak proxy for target rarity there), so it settles degree ties only.
    let key = |v: VertexId, placed: &[bool]| {
        (
            query.neighbors(v).iter().filter(|&&w| placed[w]).count(),
            query.degree(v),
            std::cmp::Reverse(rarity(v)),
            std::cmp::Reverse(v),
        )
    };
    for _ in 0..n {
        let mut best: Option<VertexId> = None;
        for v in 0..n {
            if placed[v] {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => key(v, &placed) > key(b, &placed),
            };
            if better {
                best = Some(v);
            }
        }
        let v = best.expect("unplaced vertex exists");
        placed[v] = true;
        order.push(v);
    }
    order
}

fn matching_order(query: &Graph) -> Vec<VertexId> {
    let n = query.vertex_count();
    let mut order = Vec::with_capacity(n);
    // Placed-neighbor count per vertex; usize::MAX marks "already placed".
    let mut placed_neighbors = vec![0usize; n];
    for _ in 0..n {
        let mut best: Option<VertexId> = None;
        for v in 0..n {
            if placed_neighbors[v] == usize::MAX {
                continue;
            }
            let better = match best {
                None => true,
                // Strict >: on full ties the earlier (smaller) id wins,
                // matching the seed implementation's tie-breaking.
                Some(b) => {
                    (placed_neighbors[v], query.degree(v)) > (placed_neighbors[b], query.degree(b))
                }
            };
            if better {
                best = Some(v);
            }
        }
        let v = best.expect("unplaced vertex exists");
        placed_neighbors[v] = usize::MAX;
        for &w in query.neighbors(v) {
            if placed_neighbors[w] != usize::MAX {
                placed_neighbors[w] += 1;
            }
        }
        order.push(v);
    }
    order
}

struct Search<'a> {
    query: &'a Graph,
    target: &'a Graph,
    order: &'a [VertexId],
    state: &'a mut MatchState,
    limit: usize,
    /// Embeddings found by this run (the limit counter; `stats` may carry
    /// counts accumulated from earlier runs against other targets).
    found: usize,
    mode: CollectMode,
    results: &'a mut Vec<Vec<VertexId>>,
    stats: &'a mut MatchStats,
}

impl Search<'_> {
    fn search(&mut self, depth: usize) -> bool {
        self.stats.states_visited += 1;
        if depth == self.order.len() {
            self.found += 1;
            self.stats.embeddings_found += 1;
            if self.mode == CollectMode::Embeddings {
                self.results.push(self.state.q_to_t.clone());
            }
            return self.found >= self.limit;
        }
        let qv = self.order[depth];
        // Candidate targets: if some neighbor of qv is already mapped,
        // restrict candidates to the neighbors of its image (much smaller
        // than scanning all target vertices). The adjacency slice is walked
        // directly — `target` is a copied reference, so iterating it does
        // not conflict with the mutable recursion below.
        let target = self.target;
        let mapped_neighbor = self
            .query
            .neighbors(qv)
            .iter()
            .find(|&&w| self.state.q_to_t[w] != usize::MAX)
            .copied();
        match mapped_neighbor {
            Some(w) => {
                let image = self.state.q_to_t[w];
                for &tv in target.neighbors(image) {
                    if self.try_extend(depth, qv, tv) {
                        return true;
                    }
                }
            }
            None => {
                for tv in 0..target.vertex_count() {
                    if self.try_extend(depth, qv, tv) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Tries the pair `(qv, tv)`, recursing on success; returns `true` when
    /// the search is done (limit reached).
    fn try_extend(&mut self, depth: usize, qv: VertexId, tv: VertexId) -> bool {
        if self.state.t_used[tv] || !self.feasible(qv, tv) {
            return false;
        }
        self.state.q_to_t[qv] = tv;
        self.state.t_used[tv] = true;
        let done = self.search(depth + 1);
        // Always undo before returning so the state's clean-on-return
        // invariant holds even when the limit cuts the search short.
        self.state.q_to_t[qv] = usize::MAX;
        self.state.t_used[tv] = false;
        done
    }

    /// VF2 feasibility rules for the candidate pair `(qv, tv)`.
    fn feasible(&self, qv: VertexId, tv: VertexId) -> bool {
        // Label compatibility.
        if self.query.label(qv) != self.target.label(tv) {
            return false;
        }
        // Degree bound: tv must have at least as many neighbors as qv.
        if self.target.degree(tv) < self.query.degree(qv) {
            return false;
        }
        // Core consistency: every already-mapped neighbor of qv must map to
        // a neighbor of tv (non-induced: unmapped target edges are fine).
        let mut unmapped_query_neighbors = 0usize;
        for &qw in self.query.neighbors(qv) {
            let mapped = self.state.q_to_t[qw];
            if mapped != usize::MAX {
                if !self.target.has_edge(tv, mapped) {
                    return false;
                }
            } else {
                unmapped_query_neighbors += 1;
            }
        }
        // Look-ahead: tv must have enough unused neighbors to host the
        // still-unmapped neighbors of qv.
        let free_target_neighbors = self
            .target
            .neighbors(tv)
            .iter()
            .filter(|&&tw| !self.state.t_used[tw])
            .count();
        free_target_neighbors >= unmapped_query_neighbors
    }
}

/// Convenience function: `true` iff `query` is subgraph-isomorphic to
/// `target`, stopping at the first match.
pub fn has_subgraph_embedding(query: &Graph, target: &Graph) -> bool {
    Vf2Matcher::new(query).matches(target)
}

/// Convenience function returning the first embedding (query vertex id →
/// target vertex id), if any.
pub fn find_first_embedding(query: &Graph, target: &Graph) -> Option<Vec<VertexId>> {
    Vf2Matcher::new(query).find_first(target)
}

/// Convenience function counting embeddings up to `limit`.
pub fn count_embeddings(query: &Graph, target: &Graph, limit: usize) -> usize {
    Vf2Matcher::new(query).count(target, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn triangle(labels: [u32; 3]) -> Graph {
        GraphBuilder::new("tri")
            .vertices(&labels)
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    fn path(labels: &[u32]) -> Graph {
        let mut b = GraphBuilder::new("path").vertices(labels);
        for i in 1..labels.len() {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    fn square_with_diagonal() -> Graph {
        GraphBuilder::new("sq")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build()
            .unwrap()
    }

    #[test]
    fn path_embeds_in_triangle() {
        let q = path(&[1, 1]);
        let t = triangle([1, 1, 1]);
        assert!(has_subgraph_embedding(&q, &t));
        let emb = find_first_embedding(&q, &t).unwrap();
        assert_eq!(emb.len(), 2);
        assert!(t.has_edge(emb[0], emb[1]));
    }

    #[test]
    fn labels_must_match() {
        let q = path(&[1, 2]);
        let t = triangle([1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t));
        assert!(has_subgraph_embedding(&q, &triangle([1, 2, 1])));
    }

    #[test]
    fn triangle_does_not_embed_in_path() {
        let q = triangle([1, 1, 1]);
        let t = path(&[1, 1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t));
    }

    #[test]
    fn non_induced_semantics() {
        // A 4-cycle query embeds in the square-with-diagonal even though the
        // target has an extra edge between mapped vertices.
        let q = GraphBuilder::new("c4")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap();
        assert!(has_subgraph_embedding(&q, &square_with_diagonal()));
    }

    #[test]
    fn empty_query_embeds_everywhere() {
        let q = Graph::new("empty");
        let t = triangle([1, 2, 3]);
        assert!(has_subgraph_embedding(&q, &t));
        assert_eq!(find_first_embedding(&q, &t).unwrap().len(), 0);
    }

    #[test]
    fn query_larger_than_target_fails_fast() {
        let q = path(&[1, 1, 1, 1, 1]);
        let t = path(&[1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t));
    }

    #[test]
    fn single_vertex_query() {
        let q = GraphBuilder::new("v").vertex(2).build().unwrap();
        assert!(has_subgraph_embedding(&q, &triangle([1, 2, 3])));
        assert!(!has_subgraph_embedding(&q, &triangle([1, 1, 3])));
    }

    #[test]
    fn embedding_is_injective_and_edge_preserving() {
        let q = path(&[1, 1, 1]);
        let t = square_with_diagonal();
        let emb = find_first_embedding(&q, &t).unwrap();
        let mut sorted = emb.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), emb.len(), "embedding must be injective");
        for (u, v) in q.edges() {
            assert!(t.has_edge(emb[u], emb[v]));
            assert_eq!(q.label(u), t.label(emb[u]));
            assert_eq!(q.label(v), t.label(emb[v]));
        }
    }

    #[test]
    fn count_embeddings_in_triangle() {
        // A labeled edge 1-1 in an all-1 triangle: 3 edges × 2 directions.
        let q = path(&[1, 1]);
        let t = triangle([1, 1, 1]);
        assert_eq!(count_embeddings(&q, &t, 100), 6);
        // Limit is respected.
        assert_eq!(count_embeddings(&q, &t, 4), 4);
    }

    #[test]
    fn disconnected_query_embeds_component_wise() {
        // Query: two isolated labeled vertices 1 and 2.
        let q = GraphBuilder::new("2v").vertices(&[1, 2]).build().unwrap();
        let t = path(&[2, 3, 1]);
        assert!(has_subgraph_embedding(&q, &t));
        let t2 = path(&[1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t2));
    }

    #[test]
    fn self_containment() {
        let g = square_with_diagonal();
        assert!(has_subgraph_embedding(&g, &g));
    }

    #[test]
    fn stats_are_recorded() {
        let q = path(&[1, 1, 1]);
        let t = square_with_diagonal();
        let matcher = Vf2Matcher::new(&q);
        let mut stats = MatchStats::default();
        let found = matcher.find_with_limit(&t, 1, &mut stats);
        assert_eq!(found.len(), 1);
        assert!(stats.states_visited > 0);
        assert_eq!(stats.embeddings_found, 1);
    }

    #[test]
    fn matcher_is_reusable_across_targets() {
        let q = path(&[1, 2]);
        let matcher = Vf2Matcher::new(&q);
        assert!(matcher.matches(&triangle([1, 2, 3])));
        assert!(!matcher.matches(&triangle([3, 3, 3])));
        assert_eq!(matcher.query().vertex_count(), 2);
    }

    #[test]
    fn shared_state_is_reusable_across_targets_and_queries() {
        let mut state = MatchState::new();
        let q1 = path(&[1, 2]);
        let m1 = Vf2Matcher::new(&q1);
        // Alternate differently-sized targets to exercise buffer resizing
        // in both directions.
        assert!(m1.matches_with(&mut state, &triangle([1, 2, 3])));
        assert!(m1.matches_with(&mut state, &path(&[1, 2, 1, 2, 1])));
        assert!(!m1.matches_with(&mut state, &triangle([3, 3, 3])));
        // A different (larger) query through the same state.
        let q2 = path(&[1, 2, 1, 2]);
        let m2 = Vf2Matcher::new(&q2);
        assert!(m2.matches_with(&mut state, &path(&[1, 2, 1, 2, 1])));
        assert!(!m2.matches_with(&mut state, &triangle([1, 2, 3])));
        // And back to the small query (shrinking buffers).
        assert!(m1.matches_with(&mut state, &triangle([1, 2, 3])));
    }

    #[test]
    fn shared_state_find_with_limit_agrees_with_fresh_state() {
        let q = path(&[1, 1]);
        let t = triangle([1, 1, 1]);
        let matcher = Vf2Matcher::new(&q);
        let mut state = MatchState::new();
        let mut stats = MatchStats::default();
        let embs = matcher.find_with_limit_in(&mut state, &t, 100, &mut stats);
        assert_eq!(embs.len(), 6);
        // The state is clean afterwards and can be reused immediately.
        let mut stats2 = MatchStats::default();
        let embs2 = matcher.find_with_limit_in(&mut state, &t, 100, &mut stats2);
        assert_eq!(embs, embs2);
    }

    #[test]
    fn reused_stats_do_not_leak_into_the_limit() {
        let q = path(&[1, 1]);
        let t = triangle([1, 1, 1]);
        let matcher = Vf2Matcher::new(&q);
        let mut stats = MatchStats::default();
        // First call finds all 6 embeddings and accumulates stats.
        assert_eq!(matcher.find_with_limit(&t, 100, &mut stats).len(), 6);
        // Reusing the same stats must not count the earlier embeddings
        // against the new call's limit.
        assert_eq!(matcher.find_with_limit(&t, 4, &mut stats).len(), 4);
        assert_eq!(stats.embeddings_found, 10);
        // Existence checks are likewise per-run.
        let mut state = MatchState::new();
        assert!(matcher.matches_with(&mut state, &t));
        assert!(matcher.matches_with(&mut state, &t));
    }

    #[test]
    fn rarity_degree_order_starts_at_the_rarest_label() {
        // Vertex 3 carries the only occurrence of label 9; everything else is
        // label 1. The rarity-first order must open with it, and every later
        // vertex must be connected to the placed prefix (the graph is a path,
        // so a connected extension always exists).
        let g = GraphBuilder::new("rare")
            .vertices(&[1, 1, 1, 9, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 4)])
            .build()
            .unwrap();
        let order = rarity_degree_order(&g);
        assert_eq!(order[0], 3);
        assert_eq!(order.len(), 5);
        let mut placed = [false; 5];
        placed[order[0]] = true;
        for &v in &order[1..] {
            assert!(
                g.neighbors(v).iter().any(|&w| placed[w]),
                "vertex {v} extends the placed prefix"
            );
            placed[v] = true;
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn order_policies_agree_on_match_verdicts() {
        let queries = [path(&[1, 2, 1]), triangle([1, 2, 3]), path(&[2, 2])];
        let targets = [
            path(&[1, 2, 1, 2, 1]),
            triangle([1, 2, 3]),
            triangle([2, 2, 2]),
            path(&[3, 3, 3]),
        ];
        for q in &queries {
            let rarity = Vf2Matcher::with_order(q, OrderPolicy::RarityDegree);
            let legacy = Vf2Matcher::with_order(q, OrderPolicy::PlacedNeighbors);
            let default = Vf2Matcher::new(q);
            for t in &targets {
                let verdict = legacy.matches(t);
                assert_eq!(rarity.matches(t), verdict);
                assert_eq!(default.matches(t), verdict);
                // Full enumeration yields the same embedding *set* regardless
                // of the visit order.
                let mut s1 = MatchStats::default();
                let mut s2 = MatchStats::default();
                let mut e1 = rarity.find_with_limit(t, 1000, &mut s1);
                let mut e2 = legacy.find_with_limit(t, 1000, &mut s2);
                e1.sort();
                e2.sort();
                assert_eq!(e1, e2);
            }
        }
    }

    #[test]
    fn matching_order_prefers_connected_high_degree() {
        // Star center (degree 3) first, then its neighbors.
        let star = GraphBuilder::new("star")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap();
        let order = matching_order(&star);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
