//! VF2-style subgraph isomorphism matcher.
//!
//! The matcher searches for an injective mapping `m` from the vertices of a
//! *query* graph to the vertices of a *target* graph such that labels are
//! preserved and every query edge maps to a target edge (the target may have
//! additional edges — non-induced subgraph isomorphism, as in Definition 3
//! of the paper).
//!
//! The search follows the VF2 recipe: query vertices are matched one at a
//! time in a connectivity-aware order, candidate target vertices are
//! restricted to those with a compatible label, sufficient degree and
//! consistent adjacency to the partial mapping, and a one-step look-ahead on
//! unmatched-neighbor counts prunes hopeless branches early.

use sqbench_graph::{Graph, VertexId};

/// Statistics of one matching run, useful for harness instrumentation and
/// for tests that assert pruning actually happens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of recursive states expanded.
    pub states_visited: usize,
    /// Number of embeddings found (bounded by the configured limit).
    pub embeddings_found: usize,
}

/// A reusable VF2 matcher bound to a query graph. Pre-computes the matching
/// order of the query vertices once so repeated verification of the same
/// query against many candidate graphs (the common case in
/// filter-and-verify) avoids redundant work.
#[derive(Debug, Clone)]
pub struct Vf2Matcher {
    query: Graph,
    /// Order in which query vertices are matched.
    order: Vec<VertexId>,
}

impl Vf2Matcher {
    /// Builds a matcher for the given query graph.
    pub fn new(query: &Graph) -> Self {
        let order = matching_order(query);
        Vf2Matcher {
            query: query.clone(),
            order,
        }
    }

    /// The query graph this matcher was built for.
    pub fn query(&self) -> &Graph {
        &self.query
    }

    /// `true` iff the query is subgraph-isomorphic to `target`.
    pub fn matches(&self, target: &Graph) -> bool {
        self.find_first(target).is_some()
    }

    /// Returns the first embedding found, as a vector mapping each query
    /// vertex id to a target vertex id, or `None` if the query is not
    /// contained in the target. An empty query embeds trivially.
    pub fn find_first(&self, target: &Graph) -> Option<Vec<VertexId>> {
        let mut stats = MatchStats::default();
        self.find_with_limit(target, 1, &mut stats).pop()
    }

    /// Counts embeddings up to `limit` (use a small limit: the number of
    /// embeddings can be exponential).
    pub fn count(&self, target: &Graph, limit: usize) -> usize {
        let mut stats = MatchStats::default();
        self.find_with_limit(target, limit, &mut stats).len()
    }

    /// Finds up to `limit` embeddings, recording search statistics.
    pub fn find_with_limit(
        &self,
        target: &Graph,
        limit: usize,
        stats: &mut MatchStats,
    ) -> Vec<Vec<VertexId>> {
        let qn = self.query.vertex_count();
        let tn = target.vertex_count();
        let mut results = Vec::new();
        if limit == 0 {
            return results;
        }
        if qn == 0 {
            // The empty query is contained in every graph.
            results.push(Vec::new());
            stats.embeddings_found = 1;
            return results;
        }
        if qn > tn || self.query.edge_count() > target.edge_count() {
            return results;
        }
        let mut state = State {
            query: &self.query,
            target,
            order: &self.order,
            q_to_t: vec![usize::MAX; qn],
            t_used: vec![false; tn],
            limit,
            results: &mut results,
            stats,
        };
        state.search(0);
        results
    }
}

/// Connectivity-aware matching order: start with the vertex of highest
/// degree, then repeatedly pick the unordered vertex with the most already-
/// ordered neighbors (ties broken by degree). Disconnected queries fall
/// back to the highest-degree remaining vertex when no vertex touches the
/// ordered set.
fn matching_order(query: &Graph) -> Vec<VertexId> {
    let n = query.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for _ in 0..n {
        let mut best: Option<(usize, usize, VertexId)> = None; // (connected, degree, v)
        for v in 0..n {
            if placed[v] {
                continue;
            }
            let connected = query
                .neighbors(v)
                .iter()
                .filter(|&&w| placed[w])
                .count();
            let key = (connected, query.degree(v), v);
            let better = match best {
                None => true,
                Some((bc, bd, bv)) => {
                    (key.0, key.1) > (bc, bd) || ((key.0, key.1) == (bc, bd) && v < bv)
                }
            };
            if better {
                best = Some(key);
            }
        }
        let (_, _, v) = best.expect("unplaced vertex exists");
        placed[v] = true;
        order.push(v);
    }
    order
}

struct State<'a> {
    query: &'a Graph,
    target: &'a Graph,
    order: &'a [VertexId],
    /// Partial mapping query vertex -> target vertex (usize::MAX = unmapped).
    q_to_t: Vec<usize>,
    /// Target vertices already used by the mapping.
    t_used: Vec<bool>,
    limit: usize,
    results: &'a mut Vec<Vec<VertexId>>,
    stats: &'a mut MatchStats,
}

impl State<'_> {
    fn search(&mut self, depth: usize) -> bool {
        self.stats.states_visited += 1;
        if depth == self.order.len() {
            self.results.push(self.q_to_t.clone());
            self.stats.embeddings_found += 1;
            return self.results.len() >= self.limit;
        }
        let qv = self.order[depth];
        // Candidate targets: if some neighbor of qv is already mapped,
        // restrict candidates to the neighbors of its image (much smaller
        // than scanning all target vertices).
        let mapped_neighbor = self
            .query
            .neighbors(qv)
            .iter()
            .find(|&&w| self.q_to_t[w] != usize::MAX)
            .copied();
        let candidates: Vec<VertexId> = match mapped_neighbor {
            Some(w) => self.target.neighbors(self.q_to_t[w]).to_vec(),
            None => (0..self.target.vertex_count()).collect(),
        };
        for tv in candidates {
            if self.t_used[tv] {
                continue;
            }
            if !self.feasible(qv, tv) {
                continue;
            }
            self.q_to_t[qv] = tv;
            self.t_used[tv] = true;
            let done = self.search(depth + 1);
            self.q_to_t[qv] = usize::MAX;
            self.t_used[tv] = false;
            if done {
                return true;
            }
        }
        false
    }

    /// VF2 feasibility rules for the candidate pair `(qv, tv)`.
    fn feasible(&self, qv: VertexId, tv: VertexId) -> bool {
        // Label compatibility.
        if self.query.label(qv) != self.target.label(tv) {
            return false;
        }
        // Degree bound: tv must have at least as many neighbors as qv.
        if self.target.degree(tv) < self.query.degree(qv) {
            return false;
        }
        // Core consistency: every already-mapped neighbor of qv must map to
        // a neighbor of tv (non-induced: unmapped target edges are fine).
        let mut unmapped_query_neighbors = 0usize;
        for &qw in self.query.neighbors(qv) {
            let mapped = self.q_to_t[qw];
            if mapped != usize::MAX {
                if !self.target.has_edge(tv, mapped) {
                    return false;
                }
            } else {
                unmapped_query_neighbors += 1;
            }
        }
        // Look-ahead: tv must have enough unused neighbors to host the
        // still-unmapped neighbors of qv.
        let free_target_neighbors = self
            .target
            .neighbors(tv)
            .iter()
            .filter(|&&tw| !self.t_used[tw])
            .count();
        free_target_neighbors >= unmapped_query_neighbors
    }
}

/// Convenience function: `true` iff `query` is subgraph-isomorphic to
/// `target`, stopping at the first match.
pub fn has_subgraph_embedding(query: &Graph, target: &Graph) -> bool {
    Vf2Matcher::new(query).matches(target)
}

/// Convenience function returning the first embedding (query vertex id →
/// target vertex id), if any.
pub fn find_first_embedding(query: &Graph, target: &Graph) -> Option<Vec<VertexId>> {
    Vf2Matcher::new(query).find_first(target)
}

/// Convenience function counting embeddings up to `limit`.
pub fn count_embeddings(query: &Graph, target: &Graph, limit: usize) -> usize {
    Vf2Matcher::new(query).count(target, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqbench_graph::GraphBuilder;

    fn triangle(labels: [u32; 3]) -> Graph {
        GraphBuilder::new("tri")
            .vertices(&labels)
            .edges(&[(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    fn path(labels: &[u32]) -> Graph {
        let mut b = GraphBuilder::new("path").vertices(labels);
        for i in 1..labels.len() {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    fn square_with_diagonal() -> Graph {
        GraphBuilder::new("sq")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build()
            .unwrap()
    }

    #[test]
    fn path_embeds_in_triangle() {
        let q = path(&[1, 1]);
        let t = triangle([1, 1, 1]);
        assert!(has_subgraph_embedding(&q, &t));
        let emb = find_first_embedding(&q, &t).unwrap();
        assert_eq!(emb.len(), 2);
        assert!(t.has_edge(emb[0], emb[1]));
    }

    #[test]
    fn labels_must_match() {
        let q = path(&[1, 2]);
        let t = triangle([1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t));
        assert!(has_subgraph_embedding(&q, &triangle([1, 2, 1])));
    }

    #[test]
    fn triangle_does_not_embed_in_path() {
        let q = triangle([1, 1, 1]);
        let t = path(&[1, 1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t));
    }

    #[test]
    fn non_induced_semantics() {
        // A 4-cycle query embeds in the square-with-diagonal even though the
        // target has an extra edge between mapped vertices.
        let q = GraphBuilder::new("c4")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap();
        assert!(has_subgraph_embedding(&q, &square_with_diagonal()));
    }

    #[test]
    fn empty_query_embeds_everywhere() {
        let q = Graph::new("empty");
        let t = triangle([1, 2, 3]);
        assert!(has_subgraph_embedding(&q, &t));
        assert_eq!(find_first_embedding(&q, &t).unwrap().len(), 0);
    }

    #[test]
    fn query_larger_than_target_fails_fast() {
        let q = path(&[1, 1, 1, 1, 1]);
        let t = path(&[1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t));
    }

    #[test]
    fn single_vertex_query() {
        let q = GraphBuilder::new("v").vertex(2).build().unwrap();
        assert!(has_subgraph_embedding(&q, &triangle([1, 2, 3])));
        assert!(!has_subgraph_embedding(&q, &triangle([1, 1, 3])));
    }

    #[test]
    fn embedding_is_injective_and_edge_preserving() {
        let q = path(&[1, 1, 1]);
        let t = square_with_diagonal();
        let emb = find_first_embedding(&q, &t).unwrap();
        let mut sorted = emb.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), emb.len(), "embedding must be injective");
        for (u, v) in q.edges() {
            assert!(t.has_edge(emb[u], emb[v]));
            assert_eq!(q.label(u), t.label(emb[u]));
            assert_eq!(q.label(v), t.label(emb[v]));
        }
    }

    #[test]
    fn count_embeddings_in_triangle() {
        // A labeled edge 1-1 in an all-1 triangle: 3 edges × 2 directions.
        let q = path(&[1, 1]);
        let t = triangle([1, 1, 1]);
        assert_eq!(count_embeddings(&q, &t, 100), 6);
        // Limit is respected.
        assert_eq!(count_embeddings(&q, &t, 4), 4);
    }

    #[test]
    fn disconnected_query_embeds_component_wise() {
        // Query: two isolated labeled vertices 1 and 2.
        let q = GraphBuilder::new("2v").vertices(&[1, 2]).build().unwrap();
        let t = path(&[2, 3, 1]);
        assert!(has_subgraph_embedding(&q, &t));
        let t2 = path(&[1, 1, 1]);
        assert!(!has_subgraph_embedding(&q, &t2));
    }

    #[test]
    fn self_containment() {
        let g = square_with_diagonal();
        assert!(has_subgraph_embedding(&g, &g));
    }

    #[test]
    fn stats_are_recorded() {
        let q = path(&[1, 1, 1]);
        let t = square_with_diagonal();
        let matcher = Vf2Matcher::new(&q);
        let mut stats = MatchStats::default();
        let found = matcher.find_with_limit(&t, 1, &mut stats);
        assert_eq!(found.len(), 1);
        assert!(stats.states_visited > 0);
        assert_eq!(stats.embeddings_found, 1);
    }

    #[test]
    fn matcher_is_reusable_across_targets() {
        let q = path(&[1, 2]);
        let matcher = Vf2Matcher::new(&q);
        assert!(matcher.matches(&triangle([1, 2, 3])));
        assert!(!matcher.matches(&triangle([3, 3, 3])));
        assert_eq!(matcher.query().vertex_count(), 2);
    }
}
