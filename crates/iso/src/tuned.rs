//! CT-Index-style tuned subgraph isomorphism matcher.
//!
//! The paper notes that CT-Index compensates for its comparatively weak
//! (hash-fingerprint) filter with "a modified VF2 algorithm with additional
//! heuristics", making its verification stage unusually fast. This module
//! implements that verifier: the same backtracking core as [`crate::vf2`],
//! but with
//!
//! * a **target-aware matching order** — query vertices are ordered by how
//!   rare their label is in the target graph (rarest first) and, within the
//!   same rarity, by descending degree, while still preferring vertices
//!   connected to the already-ordered prefix;
//! * a **neighbor-degree look-ahead** — a candidate target vertex is
//!   rejected if the multiset of its neighbors' degrees cannot cover the
//!   degrees of the query vertex's neighbors.
//!
//! Because the order depends on the target, the matcher is constructed per
//! `(query, target)` pair, unlike [`crate::vf2::Vf2Matcher`] which is
//! reusable across targets.

use sqbench_graph::{Graph, Label, VertexId};
use std::collections::HashMap;

/// Tuned matcher used by the CT-Index verification stage.
#[derive(Debug, Clone)]
pub struct TunedMatcher;

impl TunedMatcher {
    /// `true` iff `query` is subgraph-isomorphic to `target` (first-match
    /// semantics, non-induced).
    pub fn matches(query: &Graph, target: &Graph) -> bool {
        Self::find_first(query, target).is_some()
    }

    /// First embedding (query vertex → target vertex), if any.
    pub fn find_first(query: &Graph, target: &Graph) -> Option<Vec<VertexId>> {
        let qn = query.vertex_count();
        if qn == 0 {
            return Some(Vec::new());
        }
        if qn > target.vertex_count() || query.edge_count() > target.edge_count() {
            return None;
        }
        // Quick reject on label multiplicities: the target must contain at
        // least as many vertices of every label as the query.
        let mut target_label_counts: HashMap<Label, usize> = HashMap::new();
        for v in target.vertices() {
            *target_label_counts.entry(target.label(v)).or_insert(0) += 1;
        }
        let mut query_label_counts: HashMap<Label, usize> = HashMap::new();
        for v in query.vertices() {
            *query_label_counts.entry(query.label(v)).or_insert(0) += 1;
        }
        for (label, count) in &query_label_counts {
            if target_label_counts.get(label).copied().unwrap_or(0) < *count {
                return None;
            }
        }

        let order = tuned_order(query, &target_label_counts);
        let mut search = TunedSearch {
            query,
            target,
            order: &order,
            q_to_t: vec![usize::MAX; qn],
            t_used: vec![false; target.vertex_count()],
            q_degrees: Vec::new(),
            t_degrees: Vec::new(),
        };
        if search.search(0) {
            Some(search.q_to_t)
        } else {
            None
        }
    }
}

/// Matching order: prefer vertices adjacent to the ordered prefix; among
/// those, pick the one whose label is rarest in the target, breaking ties by
/// descending degree.
fn tuned_order(query: &Graph, target_label_counts: &HashMap<Label, usize>) -> Vec<VertexId> {
    let n = query.vertex_count();
    let rarity = |v: VertexId| {
        target_label_counts
            .get(&query.label(v))
            .copied()
            .unwrap_or(0)
    };
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for _ in 0..n {
        let mut best: Option<VertexId> = None;
        for v in 0..n {
            if placed[v] {
                continue;
            }
            let connected = query.neighbors(v).iter().any(|&w| placed[w]);
            let key = (
                connected,
                std::cmp::Reverse(rarity(v)),
                query.degree(v),
                std::cmp::Reverse(v),
            );
            let better = match best {
                None => true,
                Some(b) => {
                    let bkey = (
                        query.neighbors(b).iter().any(|&w| placed[w]),
                        std::cmp::Reverse(rarity(b)),
                        query.degree(b),
                        std::cmp::Reverse(b),
                    );
                    key > bkey
                }
            };
            if better {
                best = Some(v);
            }
        }
        let v = best.expect("unplaced vertex exists");
        placed[v] = true;
        order.push(v);
    }
    order
}

struct TunedSearch<'a> {
    query: &'a Graph,
    target: &'a Graph,
    order: &'a [VertexId],
    q_to_t: Vec<usize>,
    t_used: Vec<bool>,
    /// Scratch buffers of the neighbor-degree look-ahead, reused across the
    /// whole search instead of being reallocated per feasibility check.
    q_degrees: Vec<usize>,
    t_degrees: Vec<usize>,
}

impl TunedSearch<'_> {
    fn search(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        let qv = self.order[depth];
        let mapped_neighbor = self
            .query
            .neighbors(qv)
            .iter()
            .find(|&&w| self.q_to_t[w] != usize::MAX)
            .copied();
        // Walk the adjacency slice of the mapped neighbor's image directly
        // (`target` is a copied reference, so iterating it does not conflict
        // with the mutable recursion) instead of materializing a candidate
        // vector per depth.
        let target = self.target;
        match mapped_neighbor {
            Some(w) => {
                let image = self.q_to_t[w];
                for &tv in target.neighbors(image) {
                    if self.try_extend(depth, qv, tv) {
                        return true;
                    }
                }
            }
            None => {
                for tv in 0..target.vertex_count() {
                    if self.try_extend(depth, qv, tv) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn try_extend(&mut self, depth: usize, qv: VertexId, tv: VertexId) -> bool {
        if self.t_used[tv] || !self.feasible(qv, tv) {
            return false;
        }
        self.q_to_t[qv] = tv;
        self.t_used[tv] = true;
        if self.search(depth + 1) {
            return true;
        }
        self.q_to_t[qv] = usize::MAX;
        self.t_used[tv] = false;
        false
    }

    fn feasible(&mut self, qv: VertexId, tv: VertexId) -> bool {
        let (query, target) = (self.query, self.target);
        if query.label(qv) != target.label(tv) {
            return false;
        }
        if target.degree(tv) < query.degree(qv) {
            return false;
        }
        let mut unmapped_neighbors = 0usize;
        for &qw in query.neighbors(qv) {
            let mapped = self.q_to_t[qw];
            if mapped != usize::MAX {
                if !target.has_edge(tv, mapped) {
                    return false;
                }
            } else {
                unmapped_neighbors += 1;
            }
        }
        let free_neighbors = target
            .neighbors(tv)
            .iter()
            .filter(|&&tw| !self.t_used[tw])
            .count();
        if free_neighbors < unmapped_neighbors {
            return false;
        }
        // Neighbor-degree look-ahead: the sorted degrees of tv's neighbors
        // must dominate the sorted degrees of qv's unmapped neighbors.
        self.q_degrees.clear();
        self.q_degrees.extend(
            query
                .neighbors(qv)
                .iter()
                .filter(|&&qw| self.q_to_t[qw] == usize::MAX)
                .map(|&qw| query.degree(qw)),
        );
        if self.q_degrees.is_empty() {
            return true;
        }
        self.q_degrees.sort_unstable_by(|a, b| b.cmp(a));
        self.t_degrees.clear();
        self.t_degrees.extend(
            target
                .neighbors(tv)
                .iter()
                .filter(|&&tw| !self.t_used[tw])
                .map(|&tw| target.degree(tw)),
        );
        self.t_degrees.sort_unstable_by(|a, b| b.cmp(a));
        self.q_degrees
            .iter()
            .zip(self.t_degrees.iter())
            .all(|(qd, td)| td >= qd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2;
    use sqbench_graph::GraphBuilder;

    fn path(labels: &[u32]) -> Graph {
        let mut b = GraphBuilder::new("path").vertices(labels);
        for i in 1..labels.len() {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    fn wheel5() -> Graph {
        // A hub (label 9) connected to a 4-cycle of label-1 vertices.
        GraphBuilder::new("wheel")
            .vertices(&[9, 1, 1, 1, 1])
            .edges(&[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn agrees_with_vf2_on_simple_cases() {
        let cases = [
            (path(&[1, 1]), wheel5(), true),
            (path(&[9, 1, 1]), wheel5(), true),
            (path(&[9, 9]), wheel5(), false),
            (path(&[2, 1]), wheel5(), false),
        ];
        for (q, t, expected) in cases {
            assert_eq!(TunedMatcher::matches(&q, &t), expected);
            assert_eq!(vf2::has_subgraph_embedding(&q, &t), expected);
        }
    }

    #[test]
    fn empty_and_oversized_queries() {
        let t = wheel5();
        assert!(TunedMatcher::matches(&Graph::new("empty"), &t));
        let big = path(&[1; 10]);
        assert!(!TunedMatcher::matches(&big, &t));
    }

    #[test]
    fn label_multiplicity_quick_reject() {
        // Query needs two label-9 vertices; the wheel has only one.
        let q = GraphBuilder::new("q")
            .vertices(&[9, 9])
            .edge(0, 1)
            .build()
            .unwrap();
        assert!(!TunedMatcher::matches(&q, &wheel5()));
    }

    #[test]
    fn embedding_is_valid() {
        let q = GraphBuilder::new("tri")
            .vertices(&[9, 1, 1])
            .edges(&[(0, 1), (0, 2), (1, 2)])
            .build()
            .unwrap();
        let t = wheel5();
        let emb = TunedMatcher::find_first(&q, &t).unwrap();
        let mut sorted = emb.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), emb.len());
        for (u, v) in q.edges() {
            assert!(t.has_edge(emb[u], emb[v]));
            assert_eq!(q.label(u), t.label(emb[u]));
        }
    }

    #[test]
    fn non_induced_semantics_match_vf2() {
        // 4-cycle query in a clique target.
        let q = GraphBuilder::new("c4")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap();
        let t = GraphBuilder::new("k4")
            .vertices(&[1, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build()
            .unwrap();
        assert!(TunedMatcher::matches(&q, &t));
    }

    #[test]
    fn neighbor_degree_lookahead_rejects_impossible_candidates() {
        // Query: a star whose center needs two degree>=2 neighbors. Target:
        // a path where no vertex has two non-leaf neighbors of matching
        // structure only at the ends.
        let q = GraphBuilder::new("q")
            .vertices(&[1, 1, 1, 1, 1])
            .edges(&[(0, 1), (0, 2), (1, 3), (2, 4)])
            .build()
            .unwrap();
        let t = path(&[1, 1, 1, 1, 1]);
        // The 5-path does contain the "H" shape? q is actually a path
        // 3-1-0-2-4 so it embeds; sanity: both matchers agree.
        assert_eq!(
            TunedMatcher::matches(&q, &t),
            vf2::has_subgraph_embedding(&q, &t)
        );
    }
}
