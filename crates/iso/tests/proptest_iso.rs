//! Property-based tests for the subgraph isomorphism matchers.
//!
//! The key oracle: queries extracted as subgraphs of a target must always be
//! found, the two matchers (VF2 and the tuned CT-Index verifier) must agree
//! on every input, and any embedding returned must actually be a valid
//! label- and edge-preserving injective mapping.

use proptest::prelude::*;
use sqbench_graph::Graph;
use sqbench_iso::{vf2, TunedMatcher, Vf2Matcher};

/// Random labeled graph strategy.
fn arb_graph(max_n: usize, max_labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..max_labels, n);
        let edge_flags = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
        (labels, edge_flags).prop_map(move |(labels, flags)| {
            let mut g = Graph::new("target");
            for &l in &labels {
                g.add_vertex(l);
            }
            let mut k = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if flags[k] {
                        g.add_edge(u, v).unwrap();
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// A graph together with a randomly chosen induced subgraph of it.
fn graph_and_subgraph(max_n: usize, max_labels: u32) -> impl Strategy<Value = (Graph, Graph)> {
    arb_graph(max_n, max_labels).prop_flat_map(|g| {
        let n = g.vertex_count();
        proptest::collection::vec(any::<bool>(), n).prop_map(move |keep| {
            let vertices: Vec<usize> = (0..n).filter(|&v| keep[v]).collect();
            let sub = g.induced_subgraph(&vertices);
            (g.clone(), sub)
        })
    })
}

fn validate_embedding(query: &Graph, target: &Graph, emb: &[usize]) {
    assert_eq!(emb.len(), query.vertex_count());
    let mut sorted = emb.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), emb.len(), "embedding not injective");
    for v in query.vertices() {
        assert_eq!(query.label(v), target.label(emb[v]), "label mismatch");
    }
    for (u, v) in query.edges() {
        assert!(target.has_edge(emb[u], emb[v]), "edge not preserved");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An induced subgraph of a graph is always contained in it, and the
    /// returned embedding is valid.
    #[test]
    fn extracted_subgraphs_are_always_found((target, query) in graph_and_subgraph(8, 3)) {
        let matcher = Vf2Matcher::new(&query);
        let emb = matcher.find_first(&target);
        prop_assert!(emb.is_some(), "query extracted from target not found");
        validate_embedding(&query, &target, &emb.unwrap());
        prop_assert!(TunedMatcher::matches(&query, &target));
    }

    /// The VF2 and tuned matchers agree on arbitrary (query, target) pairs.
    #[test]
    fn matchers_agree(query in arb_graph(5, 3), target in arb_graph(7, 3)) {
        let vf2_result = vf2::has_subgraph_embedding(&query, &target);
        let tuned_result = TunedMatcher::matches(&query, &target);
        prop_assert_eq!(vf2_result, tuned_result);
        if let Some(emb) = vf2::find_first_embedding(&query, &target) {
            validate_embedding(&query, &target, &emb);
        }
        if let Some(emb) = TunedMatcher::find_first(&query, &target) {
            validate_embedding(&query, &target, &emb);
        }
    }

    /// Containment is reflexive and monotone under edge removal from the
    /// query.
    #[test]
    fn containment_monotone_under_query_edge_removal(target in arb_graph(7, 3)) {
        prop_assert!(vf2::has_subgraph_embedding(&target, &target));
        // Remove one edge from a copy of the target; it must still embed.
        if let Some((u, v)) = target.edges().next() {
            let mut q = Graph::new("q");
            for w in target.vertices() {
                q.add_vertex(target.label(w));
            }
            for (a, b) in target.edges() {
                if (a, b) != (u, v) {
                    q.add_edge(a, b).unwrap();
                }
            }
            prop_assert!(vf2::has_subgraph_embedding(&q, &target));
        }
    }

    /// Adding a vertex with a label absent from the target makes the query
    /// unmatchable.
    #[test]
    fn foreign_label_blocks_matching(target in arb_graph(6, 3)) {
        let mut q = target.clone();
        q.add_vertex(999);
        prop_assert!(!vf2::has_subgraph_embedding(&q, &target));
        prop_assert!(!TunedMatcher::matches(&q, &target));
    }
}
