//! Vendored stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, strategies
//! for integer ranges, tuples, `Vec<Strategy>` and `collection::vec`,
//! `any::<bool>()`, the [`proptest!`] macro and `prop_assert!` /
//! `prop_assert_eq!`. Values are generated from a deterministic splitmix64
//! stream seeded from the test's module path and case index, so failures are
//! reproducible run-to-run. There is no shrinking: a failing case panics with
//! the ordinary assertion message (inputs can be recovered by re-running the
//! deterministic case under a debugger or with `dbg!`).

/// Deterministic random stream backing every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream for `(test name, case index)`.
    pub fn new(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + rng.below((end - start) as u64 + 1) as $t
                }
            }
        )*
    };
}

impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// `any::<T>()` — canonical strategy of a type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification accepted by [`vec`]: a fixed length or a range.
    pub trait IntoSizeRange {
        /// Lower and exclusive upper bound of the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range");
        VecStrategy { element, min, max }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` configuration (`ProptestConfig::with_cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assertion macro (stand-in: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion macro (stand-in: panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes an ordinary `#[test]` that runs `body` for `cases` deterministic
/// random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg); $($rest)*);
    };
    (@with $cfg:expr;
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    // The body runs inside a closure so its tail-expression
                    // temporaries drop before the generated bindings do
                    // (mirrors real proptest, which runs bodies as functions).
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn composition((n, v) in (1usize..5).prop_flat_map(|n| {
            (1usize..=n, collection::vec(0u32..7, n))
        })) {
            prop_assert!(n >= 1);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 7).count(), 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new("t", 3);
        let mut b = TestRng::new("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
