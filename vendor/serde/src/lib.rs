//! Vendored stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace annotates its data-carrying types with
//! `#[derive(Serialize, Deserialize)]` so a real serde can be dropped in
//! once the build environment has registry access. Until then the traits
//! are markers and the derives emit empty impls.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String, char);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
// Transparent `Arc<T>` support, mirroring upstream serde's `rc` feature:
// an `Arc<T>` serializes exactly like the `T` it points to (sharing is not
// preserved on the wire; deserializing allocates a fresh `Arc`). Needed by
// `sqbench_graph::Dataset`, whose graphs are stored as `Vec<Arc<Graph>>`.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {}
impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl Serialize for std::time::Duration {}
impl<'de> Deserialize<'de> for std::time::Duration {}
