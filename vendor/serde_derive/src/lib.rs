//! Vendored stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The derives locate the name of the annotated `struct`/`enum` by scanning
//! the token stream (no `syn` available offline) and emit an empty impl of
//! the corresponding marker trait. Generic types are not supported — none of
//! the workspace's serde-annotated types are generic.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stand-in: could not find a struct/enum name");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
