//! Vendored stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! benchmark groups with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is simple but
//! honest: each sample times a batch of iterations sized so one sample takes
//! ≳1 ms, the configured number of samples is collected within the
//! measurement budget, and the per-iteration **median** is reported. Results
//! are printed to stdout and appended to `BENCH_<target>.json` in the
//! directory the bench runs from (the workspace root under `cargo bench`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

/// Measurement configuration shared by groups and bare bench functions.
#[derive(Debug, Clone)]
struct MeasureConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Identifier of a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher<'a> {
    config: &'a MeasureConfig,
    result_ns: &'a mut Option<(f64, usize, u64)>,
}

impl Bencher<'_> {
    /// Measures `f`, storing the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until it takes ≳1 ms.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = t.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                if Instant::now() >= warm_deadline {
                    break;
                }
            } else {
                batch = batch.saturating_mul(2);
            }
            if Instant::now() >= warm_deadline && took >= Duration::from_micros(100) {
                break;
            }
        }
        // Sampling.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline && samples_ns.len() >= 5 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples_ns[samples_ns.len() / 2];
        *self.result_ns = Some((median, samples_ns.len(), batch));
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: MeasureConfig::default(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        let config = MeasureConfig::default();
        run_one(&mut self.results, name.to_string(), &config, f);
        self
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    results: &mut Vec<BenchResult>,
    id: String,
    config: &MeasureConfig,
    mut f: F,
) {
    let mut result_ns: Option<(f64, usize, u64)> = None;
    let mut bencher = Bencher {
        config,
        result_ns: &mut result_ns,
    };
    f(&mut bencher);
    if let Some((median_ns, samples, iters_per_sample)) = result_ns {
        println!(
            "bench: {id:<60} {:>14.1} ns/iter ({samples} samples)",
            median_ns
        );
        results.push(BenchResult {
            id,
            median_ns,
            samples,
            iters_per_sample,
        });
    }
}

/// A named group of benchmarks with shared measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: MeasureConfig,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(5);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets throughput metadata (accepted and ignored by the stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/name` (the name may be a string or
    /// a [`BenchmarkId`], as in real criterion).
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into_benchmark_id().id);
        run_one(&mut self.criterion.results, id, &self.config, f);
        self
    }

    /// Benchmarks a closure over an input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&mut self.criterion.results, full, &self.config, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Throughput metadata (accepted and ignored by the stand-in).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Things usable as a benchmark name (strings and [`BenchmarkId`]s).
pub trait IntoBenchmarkId {
    /// Converts into a full id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl<T: Display> IntoBenchmarkId for T {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

/// Writes collected results as JSON to `BENCH_<target>.json`.
pub fn write_report(target: &str, c: &Criterion) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"target\": \"{target}\",\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in c.results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.median_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 == c.results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = workspace_root().join(format!("BENCH_{target}.json"));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!(
            "criterion stand-in: could not write {}: {e}",
            path.display()
        );
    } else {
        println!("criterion stand-in: wrote {}", path.display());
    }
}

/// The topmost ancestor of the current directory containing a `Cargo.toml`
/// (the workspace root under `cargo bench`); falls back to the current
/// directory.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut root = cwd.clone();
    for dir in cwd.ancestors() {
        if dir.join("Cargo.toml").is_file() {
            root = dir.to_path_buf();
        }
    }
    root
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($f(c);)+
        }
    };
}

/// Declares the bench `main` that runs the groups and writes the report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let target = std::env::args()
                .next()
                .and_then(|p| {
                    std::path::Path::new(&p)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                })
                .map(|stem| match stem.rsplit_once('-') {
                    // Strip cargo's trailing metadata hash if present.
                    Some((base, hash))
                        if hash.len() == 16
                            && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                    {
                        base.to_string()
                    }
                    _ => stem,
                })
                .unwrap_or_else(|| "bench".to_string());
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            $crate::write_report(&target, &c);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(50));
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        drop(group);
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("build", "Grapes");
        assert_eq!(id.id, "build/Grapes");
    }
}
