//! Vendored stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the subset of the `rand` 0.8 API the workspace uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` trait
//! with `gen::<T>()` / `gen_range(range)`. The generator is xoshiro256++
//! seeded through splitmix64 — statistically solid for test-data generation
//! (this stand-in is not a cryptographic RNG, and neither is the real
//! `StdRng` contractually).

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], matching `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (the role of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` via Lemire's multiply-shift with a
/// rejection step.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless `low` falls below the bias threshold.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + uniform_below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end - start) as u64 + 1;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    start + uniform_below(rng, span) as $t
                }
            }
        )*
    };
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through splitmix64 — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
